#pragma once

/// \file fft_direct.hpp
/// The first n-DFT algorithm of Proposition 8: the straightforward schedule
/// of the n-input FFT dag on n processors, one radix-2 DIF butterfly stage
/// per superstep. Stage s pairs processors at distance n/2^(s+1), which is a
/// superstep of label s — one i-superstep for each 0 <= i < log n, giving
/// running time O(sum_i (mu n / 2^i)^alpha) = O(n^alpha) on
/// D-BSP(n, O(1), x^alpha) and Theta(log^2 n) on D-BSP(n, O(1), log x).
///
/// Output convention: decimation-in-frequency leaves X in bit-reversed order
/// (processor p holds X[bit_reverse(p)]); the serial reference in
/// serial_reference.hpp uses the identical convention.

#include <complex>

#include "model/program.hpp"

namespace dbsp::algo {

using model::ProcId;
using model::Program;
using model::StepContext;
using model::StepIndex;
using model::Word;

class FftDirectProgram final : public Program {
public:
    /// \p input: n complex values, one per processor (n a power of two).
    explicit FftDirectProgram(std::vector<std::complex<double>> input);

    std::string name() const override { return "fft-direct"; }
    std::uint64_t num_processors() const override { return input_.size(); }
    std::size_t data_words() const override { return 2; }  // re, im
    std::size_t max_messages() const override { return 1; }
    StepIndex num_supersteps() const override { return log_v_ + 1; }
    unsigned label(StepIndex s) const override {
        return s < log_v_ ? static_cast<unsigned>(s) : 0u;
    }
    void init(ProcId p, std::span<Word> data) const override;
    void step(StepIndex s, ProcId p, StepContext& ctx) override;

private:
    void butterfly(StepIndex stage, ProcId p, StepContext& ctx);

    std::vector<std::complex<double>> input_;
    unsigned log_v_;
};

}  // namespace dbsp::algo
