#include "algos/serial_reference.hpp"

#include <cmath>
#include <numbers>

#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::algo {

void serial_fft_dif_bitrev(std::vector<std::complex<double>>& x) {
    const std::size_t n = x.size();
    DBSP_REQUIRE(is_pow2(n));
    for (std::size_t block = n; block >= 2; block /= 2) {
        const std::size_t half = block / 2;
        for (std::size_t start = 0; start < n; start += block) {
            for (std::size_t j = 0; j < half; ++j) {
                const auto u = x[start + j];
                const auto w = x[start + j + half];
                const double angle = -2.0 * std::numbers::pi * static_cast<double>(j) /
                                     static_cast<double>(block);
                x[start + j] = u + w;
                x[start + j + half] =
                    (u - w) * std::complex<double>(std::cos(angle), std::sin(angle));
            }
        }
    }
}

std::vector<std::complex<double>> serial_dft_naive(
    const std::vector<std::complex<double>>& x) {
    const std::size_t n = x.size();
    std::vector<std::complex<double>> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        std::complex<double> sum{0.0, 0.0};
        for (std::size_t j = 0; j < n; ++j) {
            const double angle = -2.0 * std::numbers::pi *
                                 static_cast<double>((j * k) % n) / static_cast<double>(n);
            sum += x[j] * std::complex<double>(std::cos(angle), std::sin(angle));
        }
        out[k] = sum;
    }
    return out;
}

std::vector<std::complex<double>> serial_dft_fast(
    const std::vector<std::complex<double>>& x) {
    const std::size_t n = x.size();
    DBSP_REQUIRE(is_pow2(n));
    std::vector<std::complex<double>> tmp = x;
    serial_fft_dif_bitrev(tmp);
    std::vector<std::complex<double>> out(n);
    const unsigned bits = ilog2(n);
    for (std::size_t p = 0; p < n; ++p) {
        out[reverse_bits(p, bits)] = tmp[p];
    }
    return out;
}

std::vector<std::uint64_t> serial_matmul_morton(const std::vector<std::uint64_t>& a,
                                                const std::vector<std::uint64_t>& b) {
    const std::size_t n = a.size();
    DBSP_REQUIRE(a.size() == b.size());
    DBSP_REQUIRE(is_pow2(n) && ilog2(n) % 2 == 0);
    const std::size_t s = std::size_t{1} << (ilog2(n) / 2);
    std::vector<std::uint64_t> c(n, 0);
    for (std::size_t i = 0; i < s; ++i) {
        for (std::size_t j = 0; j < s; ++j) {
            std::uint64_t acc = 0;
            for (std::size_t k = 0; k < s; ++k) {
                acc += a[morton_encode(static_cast<std::uint32_t>(i),
                                       static_cast<std::uint32_t>(k))] *
                       b[morton_encode(static_cast<std::uint32_t>(k),
                                       static_cast<std::uint32_t>(j))];
            }
            c[morton_encode(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j))] =
                acc;
        }
    }
    return c;
}

std::vector<std::uint64_t> serial_exclusive_prefix(const std::vector<std::uint64_t>& in) {
    std::vector<std::uint64_t> out(in.size());
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        out[i] = acc;
        acc += in[i];
    }
    return out;
}

}  // namespace dbsp::algo
