#pragma once

/// \file matmul.hpp
/// The n-MM algorithm of Proposition 7 (Fig. 3): semiring multiplication of
/// two sqrt(n) x sqrt(n) matrices on n processors via the standard
/// decomposition into eight (n/4)-MM subproblems solved in two rounds by the
/// four 2-clusters, recursively.
///
/// Layout: processor p holds the A, B and C entries at Morton position p
/// (row = odd bits, col = even bits), so the four quadrants of the matrices
/// are exactly the four 2-clusters, recursively at every level — submachine
/// locality falls straight out of the index encoding.
///
/// Superstep profile: Theta(2^i) supersteps with label 2i for each level i
/// (the data-routing 0-supersteps of the recursion, relative to the level's
/// clusters), giving the Proposition 7 running times
///   O(n^alpha) (alpha > 1/2), O(sqrt n log n) (alpha = 1/2),
///   O(sqrt n) (alpha < 1/2) on x^alpha, and O(sqrt n) on log x.
///
/// Arithmetic is over the (mod 2^64) semiring of uint64 words, so results are
/// exactly comparable with a serial reference.

#include "model/program.hpp"

namespace dbsp::algo {

using model::ProcId;
using model::Program;
using model::StepContext;
using model::StepIndex;
using model::Word;

class MatMulProgram final : public Program {
public:
    /// \p a, \p b: n-element inputs in Morton order (n a power of 4).
    MatMulProgram(std::vector<Word> a, std::vector<Word> b);

    std::string name() const override { return "matmul"; }
    std::uint64_t num_processors() const override { return a_.size(); }
    std::size_t data_words() const override { return 3; }  // a, b, c
    std::size_t max_messages() const override { return 2; }
    StepIndex num_supersteps() const override { return actions_.size(); }
    unsigned label(StepIndex s) const override { return actions_[s].label; }
    void init(ProcId p, std::span<Word> data) const override;
    void step(StepIndex s, ProcId p, StepContext& ctx) override;

private:
    enum class Kind : std::uint8_t {
        kRoute,    ///< exchange A/B quadrant tokens between sibling clusters
        kLeaf,     ///< c += a * b on a single processor
        kFinal,    ///< global synchronization (absorb only)
    };
    struct Action {
        Kind kind;
        unsigned label;     ///< superstep label
        unsigned depth;     ///< recursion depth d (clusters of label 2d)
        std::uint8_t from;  ///< token configuration before the route (0..2)
        std::uint8_t to;    ///< token configuration after the route
    };

    void build(unsigned depth);
    void absorb(ProcId p, StepContext& ctx);

    std::vector<Word> a_, b_;
    unsigned log_v_;
    std::vector<Action> actions_;
};

}  // namespace dbsp::algo
