#include "algos/transpose_program.hpp"

#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::algo {

TransposeProgram::TransposeProgram(std::vector<Word> values, std::size_t rounds)
    : values_(std::move(values)), rounds_(rounds) {
    DBSP_REQUIRE(is_pow2(values_.size()));
    DBSP_REQUIRE(ilog2(values_.size()) % 2 == 0);  // square grid
    DBSP_REQUIRE(rounds_ >= 1);
    side_ = std::uint64_t{1} << (ilog2(values_.size()) / 2);
}

void TransposeProgram::step(StepIndex s, ProcId p, StepContext& ctx) {
    if (ctx.inbox_size() > 0) {
        ctx.store(0, ctx.inbox(0).payload0);
    }
    if (s >= rounds_) return;  // final sync
    const ProcId dest = (p % side_) * side_ + p / side_;
    ctx.send(dest, ctx.load(0));
}

}  // namespace dbsp::algo
