#pragma once

/// \file collectives.hpp
/// Elementary tree-structured D-BSP programs: broadcast, sum-reduction and
/// exclusive prefix sums. They are not case studies from the paper's
/// evaluation, but they exercise the full label range 0..log v - 1 with
/// h = 1 relations and serve as simple workloads for tests, examples and the
/// Brent's-lemma experiment (E7).

#include "model/program.hpp"

namespace dbsp::algo {

using model::ProcId;
using model::Program;
using model::StepContext;
using model::StepIndex;
using model::Word;

/// Binomial-tree broadcast of processor 0's input word to everyone.
/// Superstep s (label s) doubles the set of informed processors; data word 0
/// holds the value, word 1 a has-value flag.
class BroadcastProgram final : public Program {
public:
    explicit BroadcastProgram(std::uint64_t v, Word value);

    std::string name() const override { return "broadcast"; }
    std::uint64_t num_processors() const override { return v_; }
    std::size_t data_words() const override { return 2; }
    std::size_t max_messages() const override { return 1; }
    StepIndex num_supersteps() const override { return log_v_ + 1; }
    unsigned label(StepIndex s) const override {
        return s < log_v_ ? static_cast<unsigned>(s) : 0u;
    }
    void init(ProcId p, std::span<Word> data) const override;
    void step(StepIndex s, ProcId p, StepContext& ctx) override;

private:
    std::uint64_t v_;
    unsigned log_v_;
    Word value_;
};

/// Binary-tree sum reduction: every processor contributes its input word;
/// processor 0 ends with the total (mod 2^64). Labels descend from
/// log v - 1 to 0 (pairs at distance 2^s combine in superstep s).
class ReduceProgram final : public Program {
public:
    /// \p inputs must have one word per processor.
    explicit ReduceProgram(std::vector<Word> inputs);

    std::string name() const override { return "reduce"; }
    std::uint64_t num_processors() const override { return inputs_.size(); }
    std::size_t data_words() const override { return 1; }
    std::size_t max_messages() const override { return 1; }
    StepIndex num_supersteps() const override { return log_v_ + 1; }
    unsigned label(StepIndex s) const override {
        return s < log_v_ ? static_cast<unsigned>(log_v_ - 1 - s) : 0u;
    }
    void init(ProcId p, std::span<Word> data) const override;
    void step(StepIndex s, ProcId p, StepContext& ctx) override;

private:
    std::vector<Word> inputs_;
    unsigned log_v_;
};

/// Blelloch-style exclusive prefix sum (mod 2^64): processor p ends with
/// sum of inputs of processors < p. Up-sweep labels descend log v-1 .. 0,
/// down-sweep labels ascend 0 .. log v-1, then a final global sync.
/// Data words: 0 = running value, 1 = tree-cell value.
class PrefixSumProgram final : public Program {
public:
    explicit PrefixSumProgram(std::vector<Word> inputs);

    std::string name() const override { return "prefix-sum"; }
    std::uint64_t num_processors() const override { return inputs_.size(); }
    std::size_t data_words() const override { return 2; }
    std::size_t max_messages() const override { return 2; }
    StepIndex num_supersteps() const override { return 2 * log_v_ + 1; }
    unsigned label(StepIndex s) const override;
    void init(ProcId p, std::span<Word> data) const override;
    void step(StepIndex s, ProcId p, StepContext& ctx) override;

private:
    std::vector<Word> inputs_;
    unsigned log_v_;
};

}  // namespace dbsp::algo
