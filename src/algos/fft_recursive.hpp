#pragma once

/// \file fft_recursive.hpp
/// The second n-DFT algorithm of Proposition 8: recursive decomposition of
/// the n-input FFT into two layers of sqrt(n) independent sqrt(n)-input
/// transforms, executed inside (log n)/2-clusters — Bailey's four-step method
/// on the D-BSP:
///
///   1. transpose within the cluster (a 0-superstep relative to the cluster);
///   2. recursive sqrt(m)-DFTs in the sub-clusters (columns, now contiguous);
///   3. twiddle by w_m^(c r') locally, transpose again;
///   4. recursive sqrt(m)-DFTs (rows);
///   5. transpose once more, yielding natural-order output.
///
/// Superstep profile: Theta(2^i) supersteps with label (1 - 1/2^i) log n for
/// 0 <= i < log log n, which gives O(log n log log n) time on
/// D-BSP(n, O(1), log x) — and, after the BT simulation with the transposes
/// delivered as rational permutations (Section 6), the optimal O(n log n).
///
/// Every transpose superstep is declared PermutationClass::kTranspose. To
/// keep all transposes square, n must be 2^(2^k) (4, 16, 256, 65536, ...);
/// clusters of size <= 4 compute the DFT directly by an all-to-all exchange.
/// Output is in natural order: processor k holds X[k].

#include <complex>

#include "model/program.hpp"

namespace dbsp::algo {

using model::ProcId;
using model::Program;
using model::StepContext;
using model::StepIndex;
using model::Word;

class FftRecursiveProgram final : public Program {
public:
    /// \p input: n complex values; n must be 2^(2^k) with n >= 4, or n <= 2.
    explicit FftRecursiveProgram(std::vector<std::complex<double>> input);

    std::string name() const override { return "fft-recursive"; }
    std::uint64_t num_processors() const override { return input_.size(); }
    std::size_t data_words() const override { return 2; }  // re, im
    std::size_t max_messages() const override { return 4; }
    StepIndex num_supersteps() const override { return actions_.size(); }
    unsigned label(StepIndex s) const override { return actions_[s].label; }
    model::PermutationClass permutation_class(StepIndex s) const override;
    std::uint64_t permutation_grain(StepIndex s) const override;
    void init(ProcId p, std::span<Word> data) const override;
    void step(StepIndex s, ProcId p, StepContext& ctx) override;

private:
    enum class Finalize : std::uint8_t { kNone, kTakeValue, kBaseCombine };
    enum class Send : std::uint8_t { kNone, kTranspose, kBaseExchange };
    struct Action {
        unsigned label;        ///< superstep label
        Finalize finalize;     ///< how to fold the inbox into the value
        std::uint64_t fin_m;   ///< cluster size of the finalized phase
        bool twiddle;          ///< multiply by w_m^(c r') before sending
        std::uint64_t twid_m;  ///< m for the twiddle factors
        Send send;             ///< communication issued by this superstep
        std::uint64_t send_m;  ///< cluster size of the send
    };

    /// Emit the schedule of an m-point DFT in label-l clusters; the caller
    /// absorbs the trailing message (pending = how).
    void build(unsigned l, std::uint64_t m);

    std::vector<std::complex<double>> input_;
    unsigned log_v_;
    std::vector<Action> actions_;
    Finalize pending_ = Finalize::kNone;  ///< construction-time bookkeeping
    std::uint64_t pending_m_ = 0;
};

}  // namespace dbsp::algo
