#include "algos/odd_even_sort.hpp"

#include <algorithm>

#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::algo {

OddEvenTranspositionSortProgram::OddEvenTranspositionSortProgram(std::vector<Word> keys)
    : keys_(std::move(keys)), log_v_(ilog2(keys_.size())) {
    DBSP_REQUIRE(is_pow2(keys_.size()));
    DBSP_REQUIRE(keys_.size() >= 2);  // a 1-key network has no exchanges
}

ProcId OddEvenTranspositionSortProgram::partner(StepIndex round, ProcId p) const {
    const std::uint64_t v = keys_.size();
    if (round % 2 == 0) {
        return p ^ 1;  // pairs (2i, 2i+1): always defined for power-of-two v
    }
    // Pairs (2i+1, 2i+2): the ends are unpaired.
    if (p == 0 || p == v - 1) return p;
    return (p % 2 == 1) ? p + 1 : p - 1;
}

unsigned OddEvenTranspositionSortProgram::label(StepIndex s) const {
    const std::uint64_t v = keys_.size();
    if (s >= v) return 0;  // final sync
    if (s % 2 == 0) {
        // Even rounds: partners differ only in bit 0 — deepest clusters.
        return log_v_ - 1;
    }
    // Odd rounds: the pair (v/2 - 1, v/2) spans the whole machine, so the
    // superstep's label is forced to 0 — no submachine locality whatsoever.
    return 0;
}

void OddEvenTranspositionSortProgram::step(StepIndex s, ProcId p, StepContext& ctx) {
    // Absorb the previous round's exchange.
    if (s > 0) {
        const ProcId prev_partner = partner(s - 1, p);
        if (prev_partner != p) {
            DBSP_REQUIRE(ctx.inbox_size() == 1);
            const Word theirs = ctx.inbox(0).payload0;
            const Word mine = ctx.load(0);
            // Lower index keeps the minimum.
            ctx.store(0, p < prev_partner ? std::min(mine, theirs)
                                          : std::max(mine, theirs));
            ctx.charge_ops(1);
        } else {
            (void)ctx.inbox_size();  // consume (empty) inbox for uniformity
        }
    }
    const std::uint64_t v = keys_.size();
    if (s >= v) return;  // final sync
    const ProcId q = partner(s, p);
    if (q != p) ctx.send(q, ctx.load(0));
}

}  // namespace dbsp::algo
