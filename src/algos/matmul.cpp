#include "algos/matmul.hpp"

#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::algo {

namespace {

/// Quadrant token tables (Fig. 3). Quadrants are indexed by their two Morton
/// bits: 0 = top-left (A11), 1 = top-right (A12), 2 = bottom-left (A21),
/// 3 = bottom-right (A22). kTokenA[cfg][q] = which A-quadrant the processors
/// of quadrant q hold in configuration cfg (0 = initial, 1 = round 1,
/// 2 = round 2); likewise for B. Configurations realize
///   round 1: C_q += A-part * B-part with products A11B11, A12B22, A22B21, A21B12
///   round 2: products A12B21, A11B12, A21B11, A22B22
/// so quadrant q accumulates exactly the two products of C_q.
constexpr std::uint8_t kTokenA[3][4] = {{0, 1, 2, 3}, {0, 1, 3, 2}, {1, 0, 2, 3}};
constexpr std::uint8_t kTokenB[3][4] = {{0, 1, 2, 3}, {0, 3, 2, 1}, {2, 1, 0, 3}};

}  // namespace

MatMulProgram::MatMulProgram(std::vector<Word> a, std::vector<Word> b)
    : a_(std::move(a)), b_(std::move(b)), log_v_(ilog2(a_.size())) {
    DBSP_REQUIRE(is_pow2(a_.size()));
    DBSP_REQUIRE(a_.size() == b_.size());
    DBSP_REQUIRE(log_v_ % 2 == 0);  // n must be a power of 4
    build(0);
    actions_.push_back(Action{Kind::kFinal, 0, 0, 0, 0});
}

void MatMulProgram::build(unsigned depth) {
    if (2 * depth == log_v_) {
        actions_.push_back(Action{Kind::kLeaf, log_v_, depth, 0, 0});
        return;
    }
    const auto d = static_cast<unsigned>(depth);
    actions_.push_back(Action{Kind::kRoute, 2 * d, d, 0, 1});
    build(depth + 1);
    actions_.push_back(Action{Kind::kRoute, 2 * d, d, 1, 2});
    build(depth + 1);
    actions_.push_back(Action{Kind::kRoute, 2 * d, d, 2, 0});  // restore
}

void MatMulProgram::init(ProcId p, std::span<Word> data) const {
    data[0] = a_[p];
    data[1] = b_[p];
    data[2] = 0;
}

void MatMulProgram::absorb(ProcId p, StepContext& ctx) {
    (void)p;
    const std::size_t n = ctx.inbox_size();
    for (std::size_t k = 0; k < n; ++k) {
        const model::Message m = ctx.inbox(k);
        ctx.store(m.payload1 == 0 ? 0 : 1, m.payload0);
    }
}

void MatMulProgram::step(StepIndex s, ProcId p, StepContext& ctx) {
    const Action& act = actions_[s];
    absorb(p, ctx);
    switch (act.kind) {
        case Kind::kFinal:
            return;
        case Kind::kLeaf:
            // Semiring multiply-accumulate on the processor's scalar block.
            ctx.store(2, ctx.load(2) + ctx.load(0) * ctx.load(1));
            ctx.charge_ops(1);
            return;
        case Kind::kRoute: {
            const unsigned shift = log_v_ - 2 * act.depth - 2;
            const auto q = static_cast<std::uint8_t>((p >> shift) & 3);
            auto route = [&](const std::uint8_t table[3][4], std::size_t word, Word tag) {
                const std::uint8_t token = table[act.from][q];
                std::uint8_t q_next = 4;
                for (std::uint8_t i = 0; i < 4; ++i) {
                    if (table[act.to][i] == token) q_next = i;
                }
                DBSP_ASSERT(q_next < 4);
                if (q_next != q) {
                    const ProcId dest = (p & ~(ProcId{3} << shift)) |
                                        (static_cast<ProcId>(q_next) << shift);
                    ctx.send(dest, ctx.load(word), tag);
                }
            };
            route(kTokenA, 0, 0);
            route(kTokenB, 1, 1);
            return;
        }
    }
}

}  // namespace dbsp::algo
