#include "algos/bitonic_sort.hpp"

#include <algorithm>

#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::algo {

BitonicSortProgram::BitonicSortProgram(std::vector<Word> keys)
    : keys_(std::move(keys)), log_v_(ilog2(keys_.size())) {
    DBSP_REQUIRE(is_pow2(keys_.size()));
    const std::uint64_t v = keys_.size();
    for (std::uint64_t block = 2; block <= v; block *= 2) {
        for (std::uint64_t distance = block / 2; distance >= 1; distance /= 2) {
            actions_.push_back(CompareExchange{block, distance});
        }
    }
}

unsigned BitonicSortProgram::label(StepIndex s) const {
    if (s >= actions_.size()) return 0;  // final sync
    // Partners differ in bit log2(distance): the pair lies in a common
    // cluster of 2 * distance processors.
    return static_cast<unsigned>(log_v_ - 1 - ilog2(actions_[s].distance));
}

void BitonicSortProgram::absorb(const CompareExchange& ce, ProcId p, StepContext& ctx) {
    DBSP_REQUIRE(ctx.inbox_size() == 1);
    const Word mine = ctx.load(0);
    const Word theirs = ctx.inbox(0).payload0;
    const bool ascending = (p & ce.block) == 0;
    const bool is_low = (p & ce.distance) == 0;
    // Low endpoint keeps min in an ascending block (max in a descending one).
    const bool keep_min = (is_low == ascending);
    ctx.store(0, keep_min ? std::min(mine, theirs) : std::max(mine, theirs));
    ctx.charge_ops(1);
}

void BitonicSortProgram::step(StepIndex s, ProcId p, StepContext& ctx) {
    if (s > 0) absorb(actions_[s - 1], p, ctx);
    if (s >= actions_.size()) return;  // final sync
    ctx.send(p ^ actions_[s].distance, ctx.load(0));
}

}  // namespace dbsp::algo
