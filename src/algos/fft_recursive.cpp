#include "algos/fft_recursive.hpp"

#include <bit>
#include <cmath>
#include <numbers>

#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::algo {

namespace {

std::complex<double> unit_root(std::uint64_t m, std::uint64_t exponent) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(exponent) / static_cast<double>(m);
    return {std::cos(angle), std::sin(angle)};
}

std::uint64_t transpose_index(std::uint64_t x, std::uint64_t side) {
    return (x % side) * side + x / side;
}

}  // namespace

FftRecursiveProgram::FftRecursiveProgram(std::vector<std::complex<double>> input)
    : input_(std::move(input)), log_v_(ilog2(input_.size())) {
    DBSP_REQUIRE(is_pow2(input_.size()));
    // The recursion halves log m; every split must stay square.
    DBSP_REQUIRE(log_v_ <= 2 || is_pow2(log_v_));
    build(0, input_.size());
    actions_.push_back(Action{0, pending_, pending_m_, false, 0, Send::kNone, 0});
}

void FftRecursiveProgram::build(unsigned l, std::uint64_t m) {
    if (m <= 4) {
        actions_.push_back(
            Action{l, pending_, pending_m_, false, 0, Send::kBaseExchange, m});
        pending_ = Finalize::kBaseCombine;
        pending_m_ = m;
        return;
    }
    const unsigned half_log = ilog2(m) / 2;
    const std::uint64_t root_m = std::uint64_t{1} << half_log;
    // Step 1: transpose, so columns become contiguous sub-clusters.
    actions_.push_back(Action{l, pending_, pending_m_, false, 0, Send::kTranspose, m});
    pending_ = Finalize::kTakeValue;
    pending_m_ = m;
    build(l + half_log, root_m);  // column DFTs
    // Step 2: twiddle + transpose, so rows become contiguous sub-clusters.
    actions_.push_back(Action{l, pending_, pending_m_, true, m, Send::kTranspose, m});
    pending_ = Finalize::kTakeValue;
    pending_m_ = m;
    build(l + half_log, root_m);  // row DFTs
    // Step 3: final transpose for natural output order.
    actions_.push_back(Action{l, pending_, pending_m_, false, 0, Send::kTranspose, m});
    pending_ = Finalize::kTakeValue;
    pending_m_ = m;
}

model::PermutationClass FftRecursiveProgram::permutation_class(StepIndex s) const {
    return actions_[s].send == Send::kTranspose ? model::PermutationClass::kTranspose
                                                : model::PermutationClass::kGeneral;
}

std::uint64_t FftRecursiveProgram::permutation_grain(StepIndex s) const {
    return actions_[s].send == Send::kTranspose ? actions_[s].send_m : 0;
}

void FftRecursiveProgram::init(ProcId p, std::span<Word> data) const {
    data[0] = std::bit_cast<Word>(input_[p].real());
    data[1] = std::bit_cast<Word>(input_[p].imag());
}

void FftRecursiveProgram::step(StepIndex s, ProcId p, StepContext& ctx) {
    const Action& act = actions_[s];
    std::complex<double> value(ctx.load_double(0), ctx.load_double(1));

    switch (act.finalize) {
        case Finalize::kNone:
            break;
        case Finalize::kTakeValue: {
            DBSP_REQUIRE(ctx.inbox_size() == 1);
            const model::Message m = ctx.inbox(0);
            value = {std::bit_cast<double>(m.payload0), std::bit_cast<double>(m.payload1)};
            break;
        }
        case Finalize::kBaseCombine: {
            // Direct m-point DFT from the all-to-all exchange: this processor
            // computes coefficient k of its (aligned) fin_m-cluster.
            const std::uint64_t m = act.fin_m;
            const std::uint64_t k = p & (m - 1);
            const std::size_t received = ctx.inbox_size();
            DBSP_REQUIRE(received == m - 1);
            std::complex<double> sum = value * unit_root(m, (k * k) % m);
            for (std::size_t i = 0; i < received; ++i) {
                const model::Message msg = ctx.inbox(i);
                const std::uint64_t j = msg.src & (m - 1);
                const std::complex<double> xj(std::bit_cast<double>(msg.payload0),
                                              std::bit_cast<double>(msg.payload1));
                sum += xj * unit_root(m, (j * k) % m);
            }
            value = sum;
            ctx.charge_ops(8 * m);
            break;
        }
    }

    if (act.twiddle) {
        // value is Y[c][r'] at in-cluster position x = c * sqrt(m) + r'.
        const std::uint64_t m = act.twid_m;
        const std::uint64_t side = std::uint64_t{1} << (ilog2(m) / 2);
        const std::uint64_t x = p & (m - 1);
        value *= unit_root(m, ((x / side) * (x % side)) % m);
        ctx.charge_ops(8);
    }

    ctx.store_double(0, value.real());
    ctx.store_double(1, value.imag());

    switch (act.send) {
        case Send::kNone:
            break;
        case Send::kTranspose: {
            const std::uint64_t m = act.send_m;
            const std::uint64_t side = std::uint64_t{1} << (ilog2(m) / 2);
            const ProcId cluster_first = p & ~(m - 1);
            ctx.send_double(cluster_first + transpose_index(p & (m - 1), side),
                            value.real(), value.imag());
            break;
        }
        case Send::kBaseExchange: {
            const std::uint64_t m = act.send_m;
            const ProcId cluster_first = p & ~(m - 1);
            for (std::uint64_t j = 0; j < m; ++j) {
                if (cluster_first + j != p) {
                    ctx.send_double(cluster_first + j, value.real(), value.imag());
                }
            }
            break;
        }
    }
}

}  // namespace dbsp::algo
