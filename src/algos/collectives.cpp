#include "algos/collectives.hpp"

#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::algo {

BroadcastProgram::BroadcastProgram(std::uint64_t v, Word value)
    : v_(v), log_v_(ilog2(v)), value_(value) {
    DBSP_REQUIRE(is_pow2(v));
}

void BroadcastProgram::init(ProcId p, std::span<Word> data) const {
    if (p == 0) {
        data[0] = value_;
        data[1] = 1;
    }
}

void BroadcastProgram::step(StepIndex s, ProcId p, StepContext& ctx) {
    // Absorb: a message carries the value.
    if (ctx.inbox_size() > 0) {
        ctx.store(0, ctx.inbox(0).payload0);
        ctx.store(1, 1);
    }
    if (s >= log_v_) return;  // final synchronization superstep
    // Superstep s: the 2^s informed processors (multiples of v/2^s) each
    // inform the processor halfway across their s-cluster.
    const std::uint64_t stride = v_ >> s;
    if (ctx.load(1) != 0 && p % stride == 0) {
        ctx.send(p + (stride >> 1), ctx.load(0));
    }
}

ReduceProgram::ReduceProgram(std::vector<Word> inputs)
    : inputs_(std::move(inputs)), log_v_(ilog2(inputs_.size())) {
    DBSP_REQUIRE(is_pow2(inputs_.size()));
}

void ReduceProgram::init(ProcId p, std::span<Word> data) const { data[0] = inputs_[p]; }

void ReduceProgram::step(StepIndex s, ProcId p, StepContext& ctx) {
    // Absorb the partial sum combined in the previous superstep.
    if (ctx.inbox_size() > 0) {
        ctx.store(0, ctx.load(0) + ctx.inbox(0).payload0);
        ctx.charge_ops(1);
    }
    if (s >= log_v_) return;
    // Superstep s: pairs at distance 2^s combine (label log v - 1 - s).
    const std::uint64_t d = std::uint64_t{1} << s;
    if ((p & (2 * d - 1)) == d) {
        ctx.send(p - d, ctx.load(0));
    }
}

PrefixSumProgram::PrefixSumProgram(std::vector<Word> inputs)
    : inputs_(std::move(inputs)), log_v_(ilog2(inputs_.size())) {
    DBSP_REQUIRE(is_pow2(inputs_.size()));
}

unsigned PrefixSumProgram::label(StepIndex s) const {
    if (s < log_v_) return static_cast<unsigned>(log_v_ - 1 - s);  // up-sweep
    if (s < 2 * log_v_) return static_cast<unsigned>(s - log_v_);  // down-sweep
    return 0;                                                      // final sync
}

void PrefixSumProgram::init(ProcId p, std::span<Word> data) const {
    data[0] = inputs_[p];  // running input copy
    data[1] = inputs_[p];  // tree-cell value
}

void PrefixSumProgram::step(StepIndex s, ProcId p, StepContext& ctx) {
    const std::uint64_t v = inputs_.size();
    // --- absorb the previous superstep's messages ---------------------------
    if (s > 0 && s <= log_v_) {
        // Up-sweep combine at distance 2^(s-1): parents add the child value.
        const std::size_t n = ctx.inbox_size();
        if (n > 0) {
            ctx.store(1, ctx.load(1) + ctx.inbox(0).payload0);
            ctx.charge_ops(1);
        }
    } else if (s > log_v_) {
        // Down-sweep exchange at distance v/2^(s-log v): parent adds the old
        // child value (tag 1), child takes the parent value (tag 0).
        const std::size_t n = ctx.inbox_size();
        for (std::size_t k = 0; k < n; ++k) {
            const model::Message m = ctx.inbox(k);
            if (m.payload1 == 0) {
                ctx.store(1, m.payload0);  // child receives parent's value
            } else {
                ctx.store(1, ctx.load(1) + m.payload0);  // parent adds child's
                ctx.charge_ops(1);
            }
        }
    }
    // --- act ------------------------------------------------------------------
    if (s < log_v_) {
        // Up-sweep send at distance d = 2^s.
        const std::uint64_t d = std::uint64_t{1} << s;
        if ((p & (2 * d - 1)) == d - 1) {
            ctx.send(p + d, ctx.load(1));
        }
        return;
    }
    if (s == log_v_ && p == v - 1) {
        ctx.store(1, 0);  // clear the root before the down-sweep
    }
    if (s < 2 * log_v_) {
        // Down-sweep exchange at distance d = v / 2^(s - log v + 1).
        const std::uint64_t d = v >> (s - log_v_ + 1);
        if ((p & (2 * d - 1)) == 2 * d - 1) {
            ctx.send(p - d, ctx.load(1), 0);  // tag 0: parent -> child
        } else if ((p & (2 * d - 1)) == d - 1) {
            ctx.send(p + d, ctx.load(1), 1);  // tag 1: child's old value
        }
        return;
    }
    // Final superstep: word 0 becomes the exclusive prefix sum.
    ctx.store(0, ctx.load(1));
}

}  // namespace dbsp::algo
