#pragma once

/// \file permutation.hpp
/// Cluster-respecting random routing rounds. Each round r has a label l_r and
/// a fixed pseudorandom permutation that maps every processor to a target in
/// its own l_r-cluster; values are routed accordingly (an h = 1 relation).
///
/// This is the workhorse program for property tests and for the generic
/// slowdown experiments (E3/E8): an arbitrary label sequence exercises every
/// path of the simulators' cluster scheduling, and the functional result (a
/// composition of known permutations) is trivial to predict.

#include "model/program.hpp"
#include "util/rng.hpp"

namespace dbsp::algo {

using model::ProcId;
using model::Program;
using model::StepContext;
using model::StepIndex;
using model::Word;

class RandomRoutingProgram final : public Program {
public:
    /// One routing round per entry of \p round_labels (each <= log v), plus a
    /// final 0-superstep. Initial value of processor p is p (so the final
    /// data word directly encodes the permutation composition). Work per
    /// round per processor can be inflated with \p local_ops to model
    /// computation-heavy supersteps, and traffic with \p fill_messages extra
    /// (ignored) messages per processor per round, each routed by its own
    /// cluster-respecting permutation — so h = 1 + fill_messages exactly,
    /// which turns the program into a *full* program (h = Theta(mu)) for the
    /// Corollary 11 experiments when fill_messages ~ mu.
    RandomRoutingProgram(std::uint64_t v, std::vector<unsigned> round_labels,
                         std::uint64_t seed, std::uint64_t local_ops = 0,
                         std::size_t fill_messages = 0);

    std::string name() const override { return "random-routing"; }
    std::uint64_t num_processors() const override { return v_; }
    std::size_t data_words() const override { return 1; }
    std::size_t max_messages() const override { return 1 + fill_messages_; }
    StepIndex num_supersteps() const override { return labels_.size(); }
    unsigned label(StepIndex s) const override { return labels_[s]; }
    void init(ProcId p, std::span<Word> data) const override { data[0] = p; }
    void step(StepIndex s, ProcId p, StepContext& ctx) override;

    /// Expected final value at processor p (inverse of the composition).
    Word expected(ProcId p) const { return expected_[p]; }

private:
    std::uint64_t v_;
    std::vector<unsigned> labels_;            ///< per superstep (incl. final 0)
    std::vector<std::vector<ProcId>> dest_;   ///< dest_[round][p]
    std::vector<std::vector<ProcId>> fill_dest_;  ///< filler permutations
    std::vector<Word> expected_;
    std::uint64_t local_ops_;
    std::size_t fill_messages_;
};

}  // namespace dbsp::algo
