#pragma once

/// \file odd_even_sort.hpp
/// Odd-even transposition sort as a D-BSP program — the *anti-case-study*.
///
/// The network sorts n keys in n rounds of neighbour compare-exchanges, which
/// is fine-grained parallelism with no submachine structure at all: every odd
/// round pairs processors (2i+1, 2i+2), and the middle such pair straddles the
/// root of the cluster tree, so odd rounds are 0-supersteps. The D-BSP time is
/// Theta(n g(mu n)) and the Theorem 5 simulation inherits a Theta(n^2)-ish
/// cost — whereas bitonic sorting, solving the same problem with structured
/// (submachine-local) parallelism, simulates to Theta(n^(1+alpha)).
///
/// This contrast is the point of the paper's introduction: it is not
/// parallelism per se that becomes locality of reference, but *submachine
/// locality*. Experiment E13 measures the gap.

#include "model/program.hpp"

namespace dbsp::algo {

using model::ProcId;
using model::Program;
using model::StepContext;
using model::StepIndex;
using model::Word;

class OddEvenTranspositionSortProgram final : public Program {
public:
    /// \p keys: one per processor (size a power of two).
    explicit OddEvenTranspositionSortProgram(std::vector<Word> keys);

    std::string name() const override { return "odd-even-transposition-sort"; }
    std::uint64_t num_processors() const override { return keys_.size(); }
    std::size_t data_words() const override { return 1; }
    std::size_t max_messages() const override { return 1; }
    StepIndex num_supersteps() const override { return keys_.size() + 1; }
    unsigned label(StepIndex s) const override;
    void init(ProcId p, std::span<Word> data) const override { data[0] = keys_[p]; }
    void step(StepIndex s, ProcId p, StepContext& ctx) override;

private:
    /// Partner of p in round r, or p itself if unpaired this round.
    ProcId partner(StepIndex round, ProcId p) const;

    std::vector<Word> keys_;
    unsigned log_v_;
};

}  // namespace dbsp::algo
