#include "perf/counters.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace dbsp::perf {

struct CounterGroup::Event {
    std::string name;
    int fd = -1;
    std::string reason;  ///< open failure when fd < 0
};

namespace {

/// Kill switch: any non-empty value other than "0" forces every group
/// unavailable with a deterministic reason — the CI degradation smoke.
bool perf_disabled_by_env() {
    const char* env = std::getenv("DBSP_NO_PERF");
    return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

#if defined(__linux__)

struct EventSpec {
    const char* name;
    std::uint32_t type;
    std::uint64_t config;
};

constexpr std::uint64_t hw_cache(std::uint64_t cache, std::uint64_t op,
                                 std::uint64_t result) {
    return cache | (op << 8) | (result << 16);
}

/// The fixed event set. LLC traffic uses the portable
/// PERF_COUNT_HW_CACHE_REFERENCES/MISSES pair (op-level LL cache events are
/// unsupported on many PMUs); L1D and dTLB use read-op cache events, which
/// match the replayed workload (pure loads).
const EventSpec kEvents[] = {
    {"cycles", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {"instructions", PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {"l1d_read_accesses", PERF_TYPE_HW_CACHE,
     hw_cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
              PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {"l1d_read_misses", PERF_TYPE_HW_CACHE,
     hw_cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
              PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {"llc_accesses", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {"llc_misses", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {"dtlb_read_accesses", PERF_TYPE_HW_CACHE,
     hw_cache(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
              PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {"dtlb_read_misses", PERF_TYPE_HW_CACHE,
     hw_cache(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
              PERF_COUNT_HW_CACHE_RESULT_MISS)},
};

int open_event(const EventSpec& spec, bool inherit) {
    perf_event_attr attr{};
    attr.size = sizeof(attr);
    attr.type = spec.type;
    attr.config = spec.config;
    attr.disabled = 1;
    // Unprivileged processes may only count user space (perf_event_paranoid
    // >= 1 rejects kernel counting outright); excluding it uniformly also
    // keeps readings comparable across privilege levels.
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.inherit = inherit ? 1 : 0;
    attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
    return static_cast<int>(
        ::syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

#endif  // defined(__linux__)

}  // namespace

const std::vector<std::string>& CounterGroup::event_names() {
    static const std::vector<std::string> names = {
        "cycles",           "instructions",       "l1d_read_accesses",
        "l1d_read_misses",  "llc_accesses",       "llc_misses",
        "dtlb_read_accesses", "dtlb_read_misses",
    };
    return names;
}

CounterGroup::CounterGroup(const Options& options) {
    if (perf_disabled_by_env()) {
        reason_ = "disabled by DBSP_NO_PERF";
        for (const std::string& name : event_names()) {
            events_.push_back(Event{name, -1, reason_});
        }
        return;
    }
#if defined(__linux__)
    std::string first_error;
    for (const EventSpec& spec : kEvents) {
        Event e;
        e.name = spec.name;
        e.fd = open_event(spec, options.inherit);
        if (e.fd < 0) {
            e.reason = std::strerror(errno);
            if (first_error.empty()) first_error = e.reason;
        } else {
            available_ = true;
        }
        events_.push_back(std::move(e));
    }
    if (!available_) {
        reason_ = "perf_event_open failed: " +
                  (first_error.empty() ? std::string("unknown error") : first_error);
    }
#else
    (void)options;
    reason_ = "perf_event_open unsupported on this platform";
    for (const std::string& name : event_names()) {
        events_.push_back(Event{name, -1, reason_});
    }
#endif
}

CounterGroup::~CounterGroup() {
#if defined(__linux__)
    for (Event& e : events_) {
        if (e.fd >= 0) ::close(e.fd);
    }
#endif
}

void CounterGroup::start() {
#if defined(__linux__)
    for (Event& e : events_) {
        if (e.fd < 0) continue;
        ::ioctl(e.fd, PERF_EVENT_IOC_RESET, 0);
        ::ioctl(e.fd, PERF_EVENT_IOC_ENABLE, 0);
    }
#endif
}

void CounterGroup::stop() {
#if defined(__linux__)
    for (Event& e : events_) {
        if (e.fd >= 0) ::ioctl(e.fd, PERF_EVENT_IOC_DISABLE, 0);
    }
#endif
}

CounterSnapshot CounterGroup::read() const {
    CounterSnapshot snap;
    snap.available = available_;
    snap.reason = reason_;
    for (const Event& e : events_) {
        CounterValue v;
        v.name = e.name;
        if (e.fd < 0) {
            v.reason = e.reason;
            snap.values.push_back(std::move(v));
            continue;
        }
#if defined(__linux__)
        // PERF_FORMAT_TOTAL_TIME_ENABLED|RUNNING: {value, enabled, running}.
        std::uint64_t buf[3] = {0, 0, 0};
        const ssize_t got = ::read(e.fd, buf, sizeof buf);
        if (got != static_cast<ssize_t>(sizeof buf)) {
            v.reason = "short read";
            snap.values.push_back(std::move(v));
            continue;
        }
        v.available = true;
        v.raw = buf[0];
        const double enabled = static_cast<double>(buf[1]);
        const double running = static_cast<double>(buf[2]);
        if (buf[2] > 0 && buf[1] > 0) {
            v.scaled = static_cast<double>(buf[0]) * (enabled / running);
            v.duty = running / enabled;
        } else {
            // Never scheduled: raw is 0 and there is nothing to scale.
            v.scaled = static_cast<double>(buf[0]);
            v.duty = buf[1] > 0 ? 0.0 : 1.0;
        }
#endif
        snap.values.push_back(std::move(v));
    }
    return snap;
}

const CounterValue* CounterSnapshot::find(const std::string& name) const {
    for (const CounterValue& v : values) {
        if (v.name == name) return &v;
    }
    return nullptr;
}

double CounterSnapshot::scaled(const std::string& name, double fallback) const {
    const CounterValue* v = find(name);
    return v != nullptr && v->available ? v->scaled : fallback;
}

double CounterSnapshot::ratio(const std::string& numerator, const std::string& denominator,
                              double fallback) const {
    const CounterValue* num = find(numerator);
    const CounterValue* den = find(denominator);
    if (num == nullptr || den == nullptr || !num->available || !den->available ||
        den->scaled <= 0.0) {
        return fallback;
    }
    return num->scaled / den->scaled;
}

report::Json CounterSnapshot::to_json() const {
    report::Json j = report::Json::object();
    j.set("available", available);
    if (!available) j.set("reason", reason);
    report::Json events = report::Json::object();
    for (const CounterValue& v : values) {
        report::Json e = report::Json::object();
        e.set("available", v.available);
        if (v.available) {
            e.set("raw", v.raw);
            e.set("scaled", v.scaled);
            e.set("duty", v.duty);
        } else {
            e.set("reason", v.reason);
        }
        events.set(v.name, std::move(e));
    }
    j.set("events", std::move(events));
    return j;
}

}  // namespace dbsp::perf
