#pragma once

/// \file counters.hpp
/// Hardware performance counters via `perf_event_open(2)`: the measurement
/// side of the hardware-locality validation loop (E15). The simulation side
/// *predicts* LRU miss ratios from reuse distances (locality/cache_model.hpp);
/// this layer reads what the host PMU actually observed, so the two can be
/// compared.
///
/// Design constraints, in order:
///  * **Graceful degradation.** Containers and CI runners routinely deny the
///    syscall (perf_event_paranoid, seccomp) or virtualize the PMU away
///    (ENOENT). A CounterGroup that cannot open its events is *not an error*:
///    it reports available() == false with the errno reason, reads return
///    empty snapshots, and every downstream consumer (bench legs, gate
///    checks, dashboard rows) waives its measured checks. The env variable
///    DBSP_NO_PERF forces this path deterministically, which is how CI
///    exercises it on machines that do have a PMU.
///  * **Multiplexing correction.** We ask for more events than most PMUs have
///    slots, so the kernel time-slices them. Each event is opened with
///    PERF_FORMAT_TOTAL_TIME_ENABLED|RUNNING and scaled by
///    enabled/running on read — the standard unbiased estimate of the count
///    the event would have seen had it been scheduled the whole time. The
///    raw value and the duty cycle (running/enabled) are both reported so a
///    reader can judge the correction's weight.
///  * **Zero interference.** Counters observe; they never participate. No
///    charged cost, trace byte, or serve reply may depend on whether a group
///    is open (regression-tested by tests/perf_counters_test.cpp and the
///    bench_micro counter legs).
///
/// Each event gets its own fd (no PERF_FORMAT_GROUP): grouped events are
/// co-scheduled all-or-nothing, which wastes slots when one cache event is
/// unsupported; independent fds let each event multiplex on its own and
/// degrade per event. `inherit` extends counting to threads spawned after
/// open — dbsp_serve opens its group before the worker pool so frames cover
/// the whole process.

#include <cstdint>
#include <string>
#include <vector>

#include "report/json.hpp"

namespace dbsp::perf {

/// One event's reading. `scaled` is raw * enabled/running (the multiplexing
/// correction); `duty` is running/enabled in [0, 1], 1.0 = never descheduled.
struct CounterValue {
    std::string name;
    bool available = false;
    std::string reason;  ///< open failure (errno text) when !available
    std::uint64_t raw = 0;
    double scaled = 0.0;
    double duty = 1.0;
};

/// Point-in-time reading of a whole group. `available` means at least one
/// event opened; `reason` explains a fully-unavailable group.
struct CounterSnapshot {
    bool available = false;
    std::string reason;
    std::vector<CounterValue> values;

    const CounterValue* find(const std::string& name) const;
    /// Scaled count for \p name; \p fallback when absent or unavailable.
    double scaled(const std::string& name, double fallback = 0.0) const;
    /// scaled(numerator) / scaled(denominator); \p fallback when either is
    /// unavailable or the denominator is zero. The miss-ratio accessor:
    /// ratio("l1d_read_misses", "l1d_read_accesses").
    double ratio(const std::string& numerator, const std::string& denominator,
                 double fallback = -1.0) const;

    /// The `"counters"` JSON section shared by telemetry frames, explore
    /// artifacts, and bench documents:
    ///   {"available":bool, "reason":str?, "events":{name:{...}}}
    report::Json to_json() const;
};

/// A fixed set of hardware events measured over start()/stop() windows.
/// Construction opens the fds (or records why it couldn't); the object is
/// usable either way. Not thread-safe; one group per measuring thread.
class CounterGroup {
public:
    struct Options {
        /// Count in child threads spawned after open (daemon-wide totals).
        bool inherit = false;
    };

    CounterGroup() : CounterGroup(Options{}) {}
    explicit CounterGroup(const Options& options);
    ~CounterGroup();
    CounterGroup(const CounterGroup&) = delete;
    CounterGroup& operator=(const CounterGroup&) = delete;

    /// True when at least one event opened.
    bool available() const { return available_; }
    /// Why the group is unavailable (empty when available()).
    const std::string& reason() const { return reason_; }

    /// Reset all counters to zero and enable counting.
    void start();
    /// Disable counting (values hold until the next start()).
    void stop();
    /// Read every event, multiplex-corrected. Valid while running or after
    /// stop(). An unavailable group returns {available:false, reason}.
    CounterSnapshot read() const;

    /// Event names in snapshot order (also the JSON key order).
    static const std::vector<std::string>& event_names();

private:
    struct Event;
    std::vector<Event> events_;
    bool available_ = false;
    std::string reason_;
};

/// RAII measurement window: start() on construction, stop() on destruction.
class ScopedCount {
public:
    explicit ScopedCount(CounterGroup& group) : group_(group) { group_.start(); }
    ~ScopedCount() { group_.stop(); }
    ScopedCount(const ScopedCount&) = delete;
    ScopedCount& operator=(const ScopedCount&) = delete;

private:
    CounterGroup& group_;
};

}  // namespace dbsp::perf
