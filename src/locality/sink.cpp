#include "locality/sink.hpp"

namespace dbsp::locality {

void LocalitySink::access(trace::Addr x, double cost) {
    if (options_.mirror_costs) Sink::access(x, cost);
    if (!options_.batched) {
        record(x);
        return;
    }
    if (run_len_ != 0 && x == run_begin_ + run_len_) {
        ++run_len_;
        return;
    }
    flush_run();
    run_begin_ = x;
    run_len_ = 1;
}

void LocalitySink::access_range(std::span<const double> prefix, trace::Addr begin,
                                trace::Addr end) {
    flush_run();
    if (options_.mirror_costs) Sink::access_range(prefix, begin, end);
    if (options_.batched) {
        record_range(begin, end, 1);
    } else {
        for (trace::Addr x = begin; x < end; ++x) record(x);
    }
    range_words_ += end - begin;
}

void LocalitySink::block_op(std::span<const double> prefix, double delta, unsigned touches,
                            std::initializer_list<trace::AddrRange> ranges) {
    flush_run();
    if (options_.mirror_costs) Sink::block_op(prefix, delta, touches, ranges);
    for (const trace::AddrRange& r : ranges) {
        if (options_.batched) {
            record_range(r.begin, r.end, touches);
        } else {
            for (trace::Addr x = r.begin; x < r.end; ++x) {
                for (unsigned t = 0; t < touches; ++t) record(x);
            }
        }
        block_op_words_ += (r.end - r.begin) * touches;
    }
}

void LocalitySink::block_transfer(trace::Addr src, trace::Addr dst, std::uint64_t len,
                                  double latency, double delta) {
    flush_run();
    if (options_.mirror_costs) Sink::block_transfer(src, dst, len, latency, delta);
    if (options_.batched) {
        record_range(src, src + len, 1);
        record_range(dst, dst + len, 1);
    } else {
        for (std::uint64_t k = 0; k < len; ++k) record(src + k);
        for (std::uint64_t k = 0; k < len; ++k) record(dst + k);
    }
    transfer_words_ += len;
}

}  // namespace dbsp::locality
