#include "locality/sink.hpp"

namespace dbsp::locality {

void LocalitySink::access(trace::Addr x, double cost) {
    Sink::access(x, cost);
    record(x);
}

void LocalitySink::access_range(std::span<const double> prefix, trace::Addr begin,
                                trace::Addr end) {
    Sink::access_range(prefix, begin, end);
    for (trace::Addr x = begin; x < end; ++x) record(x);
    range_words_ += end - begin;
}

void LocalitySink::block_op(std::span<const double> prefix, double delta, unsigned touches,
                            std::initializer_list<trace::AddrRange> ranges) {
    Sink::block_op(prefix, delta, touches, ranges);
    for (const trace::AddrRange& r : ranges) {
        for (trace::Addr x = r.begin; x < r.end; ++x) {
            for (unsigned t = 0; t < touches; ++t) record(x);
        }
        block_op_words_ += (r.end - r.begin) * touches;
    }
}

void LocalitySink::block_transfer(trace::Addr src, trace::Addr dst, std::uint64_t len,
                                  double latency, double delta) {
    Sink::block_transfer(src, dst, len, latency, delta);
    for (std::uint64_t k = 0; k < len; ++k) record(src + k);
    for (std::uint64_t k = 0; k < len; ++k) record(dst + k);
    transfer_words_ += len;
}

}  // namespace dbsp::locality
