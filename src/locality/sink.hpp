#pragma once

/// \file sink.hpp
/// LocalitySink: a trace::Sink that reconstructs the simulated machine's
/// *address stream* from the charge events and feeds it through the
/// reuse-distance engine. It layers on top of the base sink (so the exact
/// cost-mirror contract still holds: total() == machine cost bit for bit)
/// and linearizes the bulk events with fixed conventions that reproduce the
/// machines' own word accounting:
///  * access_range touches [begin, end) once per cell, ascending;
///  * block_op touches each range in the given order, each cell `touches`
///    times consecutively (a swap therefore contributes 4*len references:
///    two per cell of each block, exactly matching words_touched);
///  * block_transfer touches the source range then the destination range,
///    once per cell each.
/// With these conventions the sink's reference count equals
/// hmm::Machine::words_touched() for an HMM run, and its range/transfer word
/// counts equal the machine-published registry counters (bt.range_words,
/// bt.transfer_words) for a BT run — invariants enforced by the differential
/// oracle and bench_micro.
///
/// Performance (LocalityOptions): in the default batched mode, bulk events go
/// through the engine's O(log n + b) record_range path, and single-word
/// access() events are coalesced — an ascending run of adjacent addresses is
/// held pending and flushed as one record_range when the run breaks (or any
/// bulk event / profile read arrives). Coalescing only *groups* the reference
/// stream, never reorders it, and record_range is event-for-event identical
/// to per-word record(), so the resulting profile is bit-identical to the
/// batched=false reference path (a fuzz-oracle invariant). kSampled mode adds
/// SHARDS spatial sampling on top (see reuse_distance.hpp); mirror_costs =
/// false drops the base-sink cost fold for callers that only want the
/// profile (total() then stays 0 — the exactness contract is waived).
///
/// Null-sink discipline (PR 2) is unchanged: a machine with no sink attached
/// executes zero locality-profiling instructions; the per-word events this
/// sink consumes exist only on the read_traced/write_traced path the
/// simulators select once per run.

#include <cstdint>

#include "locality/profile.hpp"
#include "locality/reuse_distance.hpp"
#include "trace/sink.hpp"

namespace dbsp::locality {

struct LocalityOptions {
    using Mode = ReuseDistanceProfiler::Mode;
    Mode mode = Mode::kExact;
    /// SHARDS spatial sampling rate for kSampled; >= 1.0 degenerates to
    /// exact measurement (and a profile bit-identical to kExact).
    double sample_rate = 0.01;
    /// false: per-word reference path (no coalescing, no bulk engine calls).
    /// Slow; exists as the oracle baseline for the batched bit-identity
    /// invariant.
    bool batched = true;
    /// false: skip the base Sink cost fold (profile-only, total() stays 0).
    bool mirror_costs = true;
};

class LocalitySink final : public trace::Sink {
public:
    LocalitySink() : LocalitySink(LocalityOptions{}) {}
    explicit LocalitySink(const LocalityOptions& opts)
        : options_(opts), engine_(opts.mode, opts.sample_rate) {
        profile_.set_mode(
            opts.mode == LocalityOptions::Mode::kSampled && opts.sample_rate < 1.0,
            opts.sample_rate);
    }

    void access(trace::Addr x, double cost) override;
    void access_range(std::span<const double> prefix, trace::Addr begin,
                      trace::Addr end) override;
    void block_op(std::span<const double> prefix, double delta, unsigned touches,
                  std::initializer_list<trace::AddrRange> ranges) override;
    void block_transfer(trace::Addr src, trace::Addr dst, std::uint64_t len,
                        double latency, double delta) override;

    const LocalityOptions& options() const { return options_; }

    /// Snapshot of the analytics with distinct_addresses filled in. Flushes
    /// the pending coalesced run first (hence non-const).
    LocalityProfile profile() {
        flush_run();
        LocalityProfile p = profile_;
        p.distinct_addresses = engine_.distinct_addresses();
        return p;
    }

    /// Total references recorded (== hmm::Machine::words_touched for an HMM
    /// run under the linearization conventions above). In sampled mode this
    /// still counts *every* reference; see sampled_accesses() for the
    /// measured subset. Flushes the pending coalesced run first.
    std::uint64_t recorded_accesses() {
        flush_run();
        return engine_.accesses();
    }
    /// References that passed the sampling filter (== recorded_accesses()
    /// in exact mode).
    std::uint64_t sampled_accesses() {
        flush_run();
        return engine_.sampled_accesses();
    }
    /// Words recorded from access_range events (== bt.range_words for a BT
    /// run; part of hmm.bulk_words for an HMM run).
    std::uint64_t range_words() const { return range_words_; }
    /// Words recorded from block_op events (ranges * touches).
    std::uint64_t block_op_words() const { return block_op_words_; }
    /// Transfer payload words, len per block_transfer (== bt.transfer_words).
    std::uint64_t transfer_words() const { return transfer_words_; }

private:
    void record(trace::Addr x) { profile_.note(engine_.record(x)); }
    void record_range(trace::Addr begin, trace::Addr end, unsigned touches) {
        engine_.record_range(begin, end, touches,
                             [this](const ReuseDistanceProfiler::Event& e,
                                    std::uint64_t n) { profile_.note_run(e, n); });
    }
    /// Flush the pending coalesced run of single-word accesses.
    void flush_run() {
        if (run_len_ == 0) return;
        const std::uint64_t len = run_len_;
        run_len_ = 0;
        if (len == 1) {
            record(run_begin_);  // keeps the same-address replace_max fast path
        } else {
            record_range(run_begin_, run_begin_ + len, 1);
        }
    }

    LocalityOptions options_;
    ReuseDistanceProfiler engine_;
    LocalityProfile profile_;
    trace::Addr run_begin_ = 0;
    std::uint64_t run_len_ = 0;
    std::uint64_t range_words_ = 0;
    std::uint64_t block_op_words_ = 0;
    std::uint64_t transfer_words_ = 0;
};

}  // namespace dbsp::locality
