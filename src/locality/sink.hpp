#pragma once

/// \file sink.hpp
/// LocalitySink: a trace::Sink that reconstructs the simulated machine's
/// *address stream* from the charge events and feeds it through the
/// reuse-distance engine. It layers on top of the base sink (so the exact
/// cost-mirror contract still holds: total() == machine cost bit for bit)
/// and linearizes the bulk events with fixed conventions that reproduce the
/// machines' own word accounting:
///  * access_range touches [begin, end) once per cell, ascending;
///  * block_op touches each range in the given order, each cell `touches`
///    times consecutively (a swap therefore contributes 4*len references:
///    two per cell of each block, exactly matching words_touched);
///  * block_transfer touches the source range then the destination range,
///    once per cell each.
/// With these conventions the sink's reference count equals
/// hmm::Machine::words_touched() for an HMM run, and its range/transfer word
/// counts equal the machine-published registry counters (bt.range_words,
/// bt.transfer_words) for a BT run — invariants enforced by the differential
/// oracle and bench_micro.
///
/// Null-sink discipline (PR 2) is unchanged: a machine with no sink attached
/// executes zero locality-profiling instructions; the per-word events this
/// sink consumes exist only on the read_traced/write_traced path the
/// simulators select once per run.

#include <cstdint>

#include "locality/profile.hpp"
#include "locality/reuse_distance.hpp"
#include "trace/sink.hpp"

namespace dbsp::locality {

class LocalitySink final : public trace::Sink {
public:
    void access(trace::Addr x, double cost) override;
    void access_range(std::span<const double> prefix, trace::Addr begin,
                      trace::Addr end) override;
    void block_op(std::span<const double> prefix, double delta, unsigned touches,
                  std::initializer_list<trace::AddrRange> ranges) override;
    void block_transfer(trace::Addr src, trace::Addr dst, std::uint64_t len,
                        double latency, double delta) override;

    /// Snapshot of the analytics with distinct_addresses filled in.
    LocalityProfile profile() const {
        LocalityProfile p = profile_;
        p.distinct_addresses = engine_.distinct_addresses();
        return p;
    }

    /// Total references recorded (== hmm::Machine::words_touched for an HMM
    /// run under the linearization conventions above).
    std::uint64_t recorded_accesses() const { return engine_.accesses(); }
    /// Words recorded from access_range events (== bt.range_words for a BT
    /// run; part of hmm.bulk_words for an HMM run).
    std::uint64_t range_words() const { return range_words_; }
    /// Words recorded from block_op events (ranges * touches).
    std::uint64_t block_op_words() const { return block_op_words_; }
    /// Transfer payload words, len per block_transfer (== bt.transfer_words).
    std::uint64_t transfer_words() const { return transfer_words_; }

private:
    void record(trace::Addr x) { profile_.note(engine_.record(x)); }

    ReuseDistanceProfiler engine_;
    LocalityProfile profile_;
    std::uint64_t range_words_ = 0;
    std::uint64_t block_op_words_ = 0;
    std::uint64_t transfer_words_ = 0;
};

}  // namespace dbsp::locality
