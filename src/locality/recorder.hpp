#pragma once

/// \file recorder.hpp
/// RecordingSink: captures the simulated machine's linearized address stream
/// verbatim, under exactly the conventions LocalitySink uses to feed the
/// reuse-distance engine (see sink.hpp):
///  * access_range touches [begin, end) once per cell, ascending;
///  * block_op touches each range in the given order, each cell `touches`
///    times consecutively;
///  * block_transfer touches the source range then the destination range,
///    once per cell each.
/// So a RecordingSink and a LocalitySink attached to the same run see the
/// same reference stream in the same order — replaying the recorded stream
/// through a brute-force LRU cache (tests) or through a host array under
/// hardware counters (bench_e15) measures the very stream the MRC predictor
/// was computed from.
///
/// The base-class cost fold is skipped entirely (total() stays 0; the
/// exactness contract is waived like LocalitySink's mirror_costs = false
/// mode): recording is observation-only and lives beside an exact-mirror
/// sink in a MultiSink when both are wanted.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "trace/sink.hpp"

namespace dbsp::locality {

class RecordingSink final : public trace::Sink {
public:
    void access(trace::Addr x, double) override { stream_.push_back(x); }

    void access_range(std::span<const double>, trace::Addr begin,
                      trace::Addr end) override {
        for (trace::Addr x = begin; x < end; ++x) stream_.push_back(x);
    }

    void block_op(std::span<const double>, double, unsigned touches,
                  std::initializer_list<trace::AddrRange> ranges) override {
        for (const trace::AddrRange& r : ranges) {
            for (trace::Addr x = r.begin; x < r.end; ++x) {
                for (unsigned t = 0; t < touches; ++t) stream_.push_back(x);
            }
        }
    }

    void block_transfer(trace::Addr src, trace::Addr dst, std::uint64_t len, double,
                        double) override {
        for (std::uint64_t k = 0; k < len; ++k) stream_.push_back(src + k);
        for (std::uint64_t k = 0; k < len; ++k) stream_.push_back(dst + k);
    }

    const std::vector<trace::Addr>& stream() const { return stream_; }

    /// One past the highest address touched (the footprint extent a replay
    /// array must cover). 0 on an empty stream.
    trace::Addr extent() const {
        trace::Addr top = 0;
        for (trace::Addr x : stream_) top = std::max(top, x + 1);
        return top;
    }

    void clear() { stream_.clear(); }

private:
    std::vector<trace::Addr> stream_;
};

}  // namespace dbsp::locality
