#pragma once

/// \file cache_model.hpp
/// Stack-distance cache model: predicted LRU miss-ratio curves (MRCs) from
/// the reuse-distance histogram a LocalityProfile already holds. This is the
/// prediction side of the hardware-locality loop (E15): the classic
/// Mattson result that a fully-associative LRU cache of capacity C words
/// misses a reference iff its reuse distance is >= C (cold references miss
/// at every capacity) turns the profile's distance CDF directly into a miss
/// ratio for *any* cache geometry — the simulated machine's own level
/// capacities (AccessFunction breaks at 2^l words) and the host's L1/L2/LLC
/// sizes read from sysfs.
///
/// Exactness: the histogram is log2-bucketed (bucket b = bit_width(d)), so
/// at power-of-two capacities C = 2^l the prediction is *exact* — d < 2^l
/// iff bit_width(d) <= l, the same slicing identity hit_fraction() uses
/// (see profile.hpp). At non-power-of-two capacities the within-bucket
/// distance distribution is unknown; predicted_miss_ratio() interpolates
/// linearly inside the straddled bucket, which keeps the curve continuous
/// and monotone non-increasing in C but is an approximation —
/// prediction_is_exact() tells the two cases apart and every emitted
/// geometry carries the flag. The brute-force LRU oracle in
/// tests/cache_model_test.cpp asserts bit-exact agreement at every
/// power-of-two geometry and monotonicity across the rest.
///
/// Sampled mode rides for free: note_run() already rescales SHARDS
/// distances by 1/rate before bucketing and sampled_accesses is the
/// denominator throughout, so predictions are rate-corrected by
/// construction. Bit-identity between the batched and per-word engines
/// follows the same way — identical() profiles produce identical
/// predictions — and the differential oracle (check_locality_modes)
/// asserts it end to end.

#include <cstdint>
#include <string>
#include <vector>

#include "locality/profile.hpp"
#include "report/json.hpp"

namespace dbsp::locality {

/// One cache configuration a prediction is evaluated at.
struct CacheGeometry {
    std::string name;    ///< "L1d", "L2", "hmm-level-3", ...
    std::string source;  ///< "sysfs" | "model" | "fixed"
    std::uint64_t capacity_words = 0;
};

/// Predicted LRU miss ratio at capacity \p capacity_words: the fraction of
/// (sampled) references whose corrected reuse distance is >= the capacity,
/// cold misses included. 0.0 on an empty profile; 1.0 at capacity 0.
double predicted_miss_ratio(const LocalityProfile& profile, std::uint64_t capacity_words);

/// True when the prediction at this capacity is exact rather than
/// within-bucket interpolated (power-of-two capacities, and 0).
bool prediction_is_exact(std::uint64_t capacity_words);

/// Host data-cache geometries from
/// /sys/devices/system/cpu/cpu0/cache/index*/ (Data and Unified levels),
/// capacities converted to words of \p word_bytes. Empty when sysfs is
/// absent — callers treat host geometries as best-effort context.
std::vector<CacheGeometry> host_cache_geometries(std::uint64_t word_bytes = 8,
                                                 const std::string& sysfs_root =
                                                     "/sys/devices/system/cpu/cpu0/cache");

/// The simulated machine's own level boundaries: cumulative capacity of HMM
/// levels 0..l is exactly 2^l words (the doubling bands of the access
/// function), for l = 1 .. max_level.
std::vector<CacheGeometry> level_geometries(unsigned max_level);

/// The `dbsp-cachemodel-v1` JSON section: profile provenance, the full MRC
/// at power-of-two capacities (all exact), and a prediction per geometry.
report::Json cache_model_json(const LocalityProfile& profile,
                              const std::vector<CacheGeometry>& geometries);

}  // namespace dbsp::locality
