#pragma once

/// \file reuse_distance.hpp
/// The reuse-distance engine. For every reference it reports
///  * the LRU stack distance: the number of *distinct* addresses touched
///    since the previous reference to the same address (infinite on first
///    touch) — under LRU inclusion, a reference hits in any memory of
///    capacity C iff its distance is < C;
///  * the reuse time: the number of references since that previous
///    reference — the quantity the Denning working-set recurrence averages.
///
/// Two operating modes (Mode):
///  * kExact — every reference is measured. record() costs O(log n) expected
///    treap work; record_range() batches a bulk access of b contiguous words
///    into O(log n + b) amortized: the b new timestamps are appended as one
///    run, and the displaced previous timestamps of a strictly-ascending
///    warm run are cut out with at most two splits, with the stack distance
///    of the whole run computed in closed form (see below).
///  * kSampled — SHARDS-style fixed-rate spatial sampling (Waldspurger et
///    al.): a reference is measured iff splitmix(addr) < rate * 2^64, so
///    every address is consistently in or out of the sample and the sampled
///    stack distances are unbiased estimates of distance * rate. Treap state
///    exists only for sampled addresses; the clock still advances for every
///    reference, so reuse *times* stay exact. rate = 1.0 degenerates to
///    bit-identical exact behavior.
///
/// Closed-form batched distance. Process a bulk op of b cells at offsets
/// o = 0..b-1, each touched `touches` times (timestamps c0 + o*touches + 1
/// .. c0 + (o+1)*touches); defer the insertion of all final timestamps to
/// one appended run. For a maximal warm segment of k cells whose previous
/// timestamps strictly ascend (any gaps — order suffices) and whose span
/// [p_0, p_{k-1}] contains no stranger timestamp (verified by
/// erase_span_exact), cell j's per-word query would see `above` stranger
/// keys beyond p_{k-1}, the k-1-j not-yet-displaced segment prevs above
/// p_j, and done+j already-assigned final stamps of this op — so
/// d_j = above + (k-1-j) + (done+j) = above + k - 1 + done, constant
/// across the segment. A segment that fails the no-stranger check retries
/// on its maximal fixed-stride subruns (each usually the intact residue of
/// one earlier bulk op), and only true leftovers pay per-cell queries with
/// the same `+ done + j` pending-insert correction — so batched and
/// per-word event streams are bit-identical by construction (a fuzz-oracle
/// invariant).

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "locality/reuse_tree.hpp"
#include "model/types.hpp"

namespace dbsp::locality {

using model::Addr;

class ReuseDistanceProfiler {
public:
    enum class Mode { kExact, kSampled };

    struct Event {
        bool cold;               ///< first touch: distance and time are infinite
        std::uint64_t distance;  ///< LRU stack distance (0 = consecutive reuse)
        std::uint64_t time;      ///< references since the previous touch (>= 1)
        bool sampled = true;     ///< false: skipped by the sampling filter
                                 ///< (only the reference count is meaningful)
    };

    ReuseDistanceProfiler() = default;
    ReuseDistanceProfiler(Mode mode, double sample_rate) {
        if (mode == Mode::kSampled && sample_rate < 1.0) {
            sample_all_ = false;
            // rate * 2^64, exact for every representable rate < 1.
            threshold_ = static_cast<std::uint64_t>(sample_rate * 18446744073709551616.0);
        }
    }

    /// Record one reference to \p x and return its reuse event.
    Event record(Addr x) {
        const std::uint64_t now = ++clock_;
        if (!sample_all_ && !address_sampled(x)) return Event{false, 0, 0, false};
        ++sampled_;
        std::uint64_t* s = slot(x);
        const std::uint64_t prev = *s;
        *s = now;
        if (prev == 0) {
            ++distinct_;
            tree_.insert(now);
            last_stamp_ = now;
            return Event{true, 0, 0};
        }
        Event e{false, 0, now - prev};
        if (prev == last_stamp_) {
            // The previous reference was to this very address: its timestamp
            // is the tree maximum, the distance is 0, and the key can be
            // rewritten in place — no rebalancing.
            tree_.replace_max(prev, now);
        } else {
            e.distance = tree_.erase_ranked(prev);
            tree_.insert(now);
        }
        last_stamp_ = now;
        return e;
    }

    /// Record `touches` consecutive references to each cell of [begin, end)
    /// in ascending order — the linearization of one bulk machine op. Every
    /// measured reuse event is delivered to fold(event, repeat) in stream
    /// order; `repeat` > 1 compresses a run of identical consecutive events
    /// (same distance, same time). Folding each event `repeat` times yields
    /// exactly the per-word record() stream.
    template <typename Fold>
    void record_range(Addr begin, Addr end, unsigned touches, Fold&& fold) {
        if (begin >= end || touches == 0) return;
        if (!sample_all_) {
            record_range_sampled(begin, end, touches, fold);
            return;
        }
        if (end <= kDirectLimit) {
            grow_direct(end);
            record_range_exact(DirectSlots{stamps_.data()}, begin, end, touches, fold);
        } else {
            record_range_exact(AnySlots{this}, begin, end, touches, fold);
        }
    }

    std::uint64_t accesses() const { return clock_; }
    std::uint64_t sampled_accesses() const { return sampled_; }
    std::uint64_t distinct_addresses() const { return distinct_; }

    void clear() {
        tree_.clear();
        stamps_.clear();
        far_.clear();
        clock_ = 0;
        sampled_ = 0;
        distinct_ = 0;
        last_stamp_ = 0;
    }

private:
    /// Addresses below this are direct-mapped in a flat vector (machines back
    /// their address spaces with flat arrays, so this covers every simulated
    /// machine up to 64M words); rarer, larger addresses go through a hash
    /// map. The vector grows lazily to the touched high-water mark.
    static constexpr Addr kDirectLimit = Addr{1} << 26;

    /// Below this length the closed-form span erase is not worth its two
    /// splits; per-cell treap updates win.
    static constexpr std::uint64_t kMinClosedRun = 2;

    static bool address_sampled_hash(Addr x, std::uint64_t threshold) {
        // SplitMix64 finalizer over the address: the SHARDS spatial filter.
        std::uint64_t z = x + 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return (z ^ (z >> 31)) < threshold;
    }
    /// Memoized SHARDS filter: one bit per direct-mapped address, built
    /// lazily as the touched address space grows. Bulk scans test 64
    /// addresses per word load (and skip all 64 on a zero word, the common
    /// case at low rates); far addresses hash directly.
    bool address_sampled(Addr x) {
        if (x < kDirectLimit) {
            grow_bits(x + 1);
            return (sample_bits_[x >> 6] >> (x & 63)) & 1;
        }
        return address_sampled_hash(x, threshold_);
    }

    void grow_bits(Addr end) {
        const std::size_t words = (static_cast<std::size_t>(end) + 63) / 64;
        if (sample_bits_.size() >= words) return;
        std::size_t cap = sample_bits_.empty() ? 16 : sample_bits_.size();
        while (cap < words) cap *= 2;
        const std::size_t old = sample_bits_.size();
        sample_bits_.resize(cap, 0);
        for (std::size_t w = old; w < cap; ++w) {
            std::uint64_t bits = 0;
            for (unsigned b = 0; b < 64; ++b) {
                if (address_sampled_hash((static_cast<Addr>(w) << 6) | b, threshold_)) {
                    bits |= std::uint64_t{1} << b;
                }
            }
            sample_bits_[w] = bits;
        }
    }

    void grow_direct(Addr end) {
        if (stamps_.size() < end) {
            std::size_t cap = stamps_.empty() ? 1024 : stamps_.size();
            while (cap < end) cap *= 2;
            stamps_.resize(cap, 0);
        }
    }

    std::uint64_t* slot(Addr x) {
        if (x < kDirectLimit) {
            grow_direct(x + 1);
            return &stamps_[x];
        }
        return &far_[x];  // value-initialized to 0 (never touched)
    }

    struct DirectSlots {
        std::uint64_t* base;
        std::uint64_t load(Addr x) const { return base[x]; }
        void store(Addr x, std::uint64_t v) const { base[x] = v; }
    };
    struct AnySlots {
        ReuseDistanceProfiler* self;
        std::uint64_t load(Addr x) const { return *self->slot(x); }
        void store(Addr x, std::uint64_t v) const { *self->slot(x) = v; }
    };

    template <typename Slots, typename Fold>
    void record_range_exact(Slots slots, Addr begin, Addr end, unsigned touches,
                            Fold&& fold) {
        const std::uint64_t b = end - begin;
        const std::uint64_t t = touches;
        const std::uint64_t c0 = clock_;
        // Cell at offset o: first touch at c0 + o*t + 1, final at c0 + (o+1)*t.
        std::uint64_t done = 0;  // cells processed; their final stamps are pending
        Addr x = begin;
        while (x < end) {
            std::uint64_t prev = slots.load(x);
            if (prev == 0) {
                // Cold run: every cell a first touch, extra touches distance 0.
                const Addr seg = x;
                do {
                    slots.store(x, c0 + (x - begin + 1) * t);
                    ++x;
                } while (x < end && slots.load(x) == 0);
                const std::uint64_t k = x - seg;
                distinct_ += k;
                if (t == 1) {
                    fold(Event{true, 0, 0}, k);
                } else {
                    for (std::uint64_t j = 0; j < k; ++j) {
                        fold(Event{true, 0, 0}, 1);
                        fold(Event{false, 0, 1}, t - 1);
                    }
                }
                done += k;
                continue;
            }
            // Warm run: maximal segment whose previous timestamps strictly
            // ascend (any gaps — the closed form needs order and a
            // stranger-free span, not uniform stride). The prevs are saved to
            // a scratch buffer because the scan overwrites the slots.
            const Addr seg = x;
            const std::uint64_t o0 = x - begin;
            prevs_.clear();
            prevs_.push_back(prev);
            std::uint64_t p_last = prev;
            slots.store(x, c0 + (o0 + 1) * t);
            ++x;
            while (x < end) {
                const std::uint64_t p = slots.load(x);
                if (p == 0 || p <= p_last) break;
                prevs_.push_back(p);
                p_last = p;
                slots.store(x, c0 + (x - begin + 1) * t);
                ++x;
            }
            const std::uint64_t k = x - seg;
            // Emit the events of subrange [j0, j0+n) of this segment, whose
            // cells all share the constant closed-form distance d. Equal
            // consecutive (d, time) events compress into one fold — the norm
            // when the prevs came from one earlier bulk op over these cells.
            const auto emit_closed = [&](std::uint64_t j0, std::uint64_t n,
                                         std::uint64_t d) {
                if (t == 1) {
                    std::uint64_t run_time = c0 + (o0 + j0) * t + 1 - prevs_[j0];
                    std::uint64_t run_n = 1;
                    for (std::uint64_t j = j0 + 1; j < j0 + n; ++j) {
                        const std::uint64_t time = c0 + (o0 + j) * t + 1 - prevs_[j];
                        if (time == run_time) {
                            ++run_n;
                        } else {
                            fold(Event{false, d, run_time}, run_n);
                            run_time = time;
                            run_n = 1;
                        }
                    }
                    fold(Event{false, d, run_time}, run_n);
                } else {
                    for (std::uint64_t j = j0; j < j0 + n; ++j) {
                        fold(Event{false, d, c0 + (o0 + j) * t + 1 - prevs_[j]}, 1);
                        fold(Event{false, 0, 1}, t - 1);
                    }
                }
            };
            std::uint64_t above = 0;
            if (k >= kMinClosedRun && tree_.erase_span_exact(prevs_[0], p_last, k, &above)) {
                emit_closed(0, k, above + k - 1 + done);
            } else {
                // Stranger timestamps interleave the whole span (or the run
                // is too short). Retry on maximal fixed-stride subruns —
                // prevs written by one earlier bulk op form such a subrun and
                // are usually stranger-free — and only true leftovers pay
                // per-cell queries (with the pending-insert correction).
                std::uint64_t j = 0;
                while (j < k) {
                    std::uint64_t ks = 1;
                    if (j + 1 < k) {
                        const std::uint64_t stride = prevs_[j + 1] - prevs_[j];
                        while (j + ks < k && prevs_[j + ks] - prevs_[j + ks - 1] == stride) {
                            ++ks;
                        }
                    }
                    if (ks >= kMinClosedRun &&
                        tree_.erase_span_exact(prevs_[j], prevs_[j + ks - 1], ks, &above)) {
                        emit_closed(j, ks, above + ks - 1 + done + j);
                    } else {
                        for (std::uint64_t i = j; i < j + ks; ++i) {
                            const std::uint64_t p = prevs_[i];
                            const std::uint64_t d = tree_.erase_ranked(p) + done + i;
                            fold(Event{false, d, c0 + (o0 + i) * t + 1 - p}, 1);
                            if (t > 1) fold(Event{false, 0, 1}, t - 1);
                        }
                    }
                    j += ks;
                }
            }
            done += k;
        }
        tree_.append_run(c0 + t, t, b);
        clock_ = c0 + b * t;
        sampled_ += b * t;
        last_stamp_ = c0 + b * t;
    }

    template <typename Fold>
    void record_range_sampled(Addr begin, Addr end, unsigned touches, Fold&& fold) {
        const std::uint64_t t = touches;
        const std::uint64_t c0 = clock_;
        std::uint64_t skipped = 0;  // coalesced unsampled references
        // Measure one sampled cell; stamps c0 + (x-begin)*t + 1 .. + t.
        const auto measure = [&](Addr x) {
            if (skipped != 0) {
                fold(Event{false, 0, 0, false}, skipped);
                skipped = 0;
            }
            sampled_ += t;
            const std::uint64_t base = c0 + (x - begin) * t;
            std::uint64_t* s = slot(x);
            const std::uint64_t prev = *s;
            const std::uint64_t final_stamp = base + t;
            *s = final_stamp;
            if (prev == 0) {
                ++distinct_;
                tree_.insert(final_stamp);
                fold(Event{true, 0, 0}, 1);
            } else {
                const std::uint64_t d = tree_.erase_ranked(prev);
                tree_.insert(final_stamp);
                fold(Event{false, d, base + 1 - prev}, 1);
            }
            if (t > 1) fold(Event{false, 0, 1}, t - 1);
            last_stamp_ = final_stamp;
        };
        if (end <= kDirectLimit) {
            grow_bits(end);
            Addr x = begin;
            while (x < end) {
                const Addr chunk = x >> 6;
                const Addr chunk_end = std::min<Addr>(end, (chunk + 1) << 6);
                std::uint64_t bits = sample_bits_[chunk];
                bits &= ~std::uint64_t{0} << (x & 63);
                if ((chunk_end & 63) != 0) {
                    bits &= (std::uint64_t{1} << (chunk_end & 63)) - 1;
                }
                if (bits == 0) {  // the common case at low rates
                    skipped += (chunk_end - x) * t;
                    x = chunk_end;
                    continue;
                }
                Addr next = x;
                while (bits != 0) {
                    const Addr sx = (chunk << 6) | static_cast<Addr>(std::countr_zero(bits));
                    bits &= bits - 1;
                    skipped += (sx - next) * t;
                    measure(sx);
                    next = sx + 1;
                }
                skipped += (chunk_end - next) * t;
                x = chunk_end;
            }
        } else {
            for (Addr x = begin; x < end; ++x) {
                if (address_sampled(x)) {
                    measure(x);
                } else {
                    skipped += t;
                }
            }
        }
        if (skipped != 0) fold(Event{false, 0, 0, false}, skipped);
        clock_ = c0 + (end - begin) * t;
    }

    ReuseTree tree_;
    std::vector<std::uint64_t> stamps_;  ///< last final timestamp per address; 0 = never
    std::unordered_map<Addr, std::uint64_t> far_;  ///< addresses >= kDirectLimit
    std::vector<std::uint64_t> prevs_;        ///< warm-segment scan scratch
    std::vector<std::uint64_t> sample_bits_;  ///< memoized filter, 1 bit/address
    std::uint64_t clock_ = 0;
    std::uint64_t sampled_ = 0;
    std::uint64_t distinct_ = 0;
    std::uint64_t last_stamp_ = 0;  ///< newest timestamp inserted in the tree
    std::uint64_t threshold_ = 0;
    bool sample_all_ = true;
};

}  // namespace dbsp::locality
