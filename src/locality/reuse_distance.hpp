#pragma once

/// \file reuse_distance.hpp
/// The per-access reuse-distance engine. For every reference it reports
///  * the LRU stack distance: the number of *distinct* addresses touched
///    since the previous reference to the same address (infinite on first
///    touch) — under LRU inclusion, a reference hits in any memory of
///    capacity C iff its distance is < C;
///  * the reuse time: the number of references since that previous
///    reference — the quantity the Denning working-set recurrence averages.
/// Cost: one hash-map probe plus O(log n) expected treap work per access,
/// with n the number of distinct live addresses.

#include <cstdint>
#include <unordered_map>

#include "locality/reuse_tree.hpp"
#include "model/types.hpp"

namespace dbsp::locality {

using model::Addr;

class ReuseDistanceProfiler {
public:
    struct Event {
        bool cold;               ///< first touch: distance and time are infinite
        std::uint64_t distance;  ///< LRU stack distance (0 = consecutive reuse)
        std::uint64_t time;      ///< references since the previous touch (>= 1)
    };

    /// Record one reference to \p x and return its reuse event.
    Event record(Addr x) {
        const std::uint64_t now = ++clock_;
        const auto [it, inserted] = last_use_.try_emplace(x, now);
        if (inserted) {
            tree_.insert(now);
            return Event{true, 0, 0};
        }
        const std::uint64_t prev = it->second;
        const Event e{false, tree_.count_greater(prev), now - prev};
        tree_.erase(prev);
        tree_.insert(now);
        it->second = now;
        return e;
    }

    std::uint64_t accesses() const { return clock_; }
    std::uint64_t distinct_addresses() const { return last_use_.size(); }

    void clear() {
        tree_.clear();
        last_use_.clear();
        clock_ = 0;
    }

private:
    ReuseTree tree_;
    std::unordered_map<Addr, std::uint64_t> last_use_;
    std::uint64_t clock_ = 0;
};

}  // namespace dbsp::locality
