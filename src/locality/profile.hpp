#pragma once

/// \file profile.hpp
/// Derived locality analytics over a stream of reuse events:
///  * reuse-distance histogram in log2 buckets (bucket b = bit_width(d),
///    i.e. d = 0 in bucket 0, d in [2^(b-1), 2^b) in bucket b) and its CDF;
///  * Denning working-set curve w(tau), evaluated exactly at tau = 2^j from
///    a (count, sum) histogram of reuse times via the identity
///    w(tau) = (1/T) sum_i min(r_i, tau) with cold references counting tau;
///  * per-HMM-level hit ratios: level l's band [2^(l-1), 2^l) brings the
///    cumulative capacity of levels 0..l to exactly 2^l words, and under LRU
///    inclusion a reference with distance d hits within that capacity iff
///    d < 2^l iff bit_width(d) <= l — so slicing the log2 CDF at the level
///    boundaries is exact, not an approximation;
///  * the scalar locality score: mean log2(d+1) over finite-distance
///    references (0 = every reuse is immediate; cold misses are reported
///    separately and excluded from the mean).

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>

#include "locality/reuse_distance.hpp"
#include "report/json.hpp"

namespace dbsp::locality {

struct LocalityProfile {
    /// One bucket per possible bit_width of a 64-bit distance/time.
    static constexpr unsigned kBuckets = 65;

    std::uint64_t accesses = 0;
    std::uint64_t cold_misses = 0;
    std::uint64_t distinct_addresses = 0;
    double score_sum = 0.0;  ///< sum of log2(d+1) over finite distances

    std::array<std::uint64_t, kBuckets> distance_count{};
    std::array<std::uint64_t, kBuckets> time_count{};  ///< finite reuse times
    std::array<double, kBuckets> time_sum{};

    /// Fold one reuse event into the histograms.
    void note(const ReuseDistanceProfiler::Event& e);

    /// Mean log2(d+1) over finite-distance references; 0 when there are none.
    double locality_score() const;

    /// Fraction of references with distance < 2^level — the hit ratio of an
    /// LRU memory spanning HMM levels 0..level. Cold misses miss everywhere.
    double hit_fraction(unsigned level) const;

    /// Average working-set size w(2^j) over the stream (Denning-Schwartz).
    double working_set(unsigned j) const;

    /// Smallest L such that every finite distance is < 2^L (i.e. the highest
    /// occupied bucket index + ... = one past the last level that still adds
    /// hits). At least 1 so tables always have a row.
    unsigned max_level() const;

    /// `dbsp-locality-v1` JSON document fragment.
    report::Json to_json() const;

    /// Paper-style text report (histogram + per-level hit ratios + w(tau)).
    void print(std::FILE* out, const std::string& title) const;
};

}  // namespace dbsp::locality
