#pragma once

/// \file profile.hpp
/// Derived locality analytics over a stream of reuse events:
///  * reuse-distance histogram in log2 buckets (bucket b = bit_width(d),
///    i.e. d = 0 in bucket 0, d in [2^(b-1), 2^b) in bucket b) and its CDF;
///  * Denning working-set curve w(tau), evaluated exactly at tau = 2^j from
///    a (count, sum) histogram of reuse times via the identity
///    w(tau) = (1/T) sum_i min(r_i, tau) with cold references counting tau;
///  * per-HMM-level hit ratios: level l's band [2^(l-1), 2^l) brings the
///    cumulative capacity of levels 0..l to exactly 2^l words, and under LRU
///    inclusion a reference with distance d hits within that capacity iff
///    d < 2^l iff bit_width(d) <= l — so slicing the log2 CDF at the level
///    boundaries is exact, not an approximation;
///  * the scalar locality score: mean log2(d+1) over finite-distance
///    references (0 = every reuse is immediate; cold misses are reported
///    separately and excluded from the mean).
///
/// Accounting is replay-exact: reuse times are summed in 128-bit integers
/// (associative, so any run-length grouping of the event stream folds to the
/// same bits) and the score is accumulated run-length-encoded — consecutive
/// equal distances extend a pending (distance, count) run that is flushed as
/// one count * log2(d+1) term. Both make a batched event stream fold to a
/// profile bit-identical to the per-word stream's, which the differential
/// oracle asserts via identical().
///
/// Sampled mode (SHARDS): only spatially sampled references carry events;
/// sampled distances are unbiased estimates of distance * rate, so note_run
/// rescales them by 1/rate before bucketing, and the ratio denominators use
/// sampled_accesses (reuse times need no correction — the clock advances for
/// every reference). At rate 1.0 every correction is the identity and the
/// profile is bit-identical to exact mode.

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#include "locality/reuse_distance.hpp"
#include "report/json.hpp"

namespace dbsp::locality {

struct LocalityProfile {
    /// One bucket per possible bit_width of a 64-bit distance/time.
    static constexpr unsigned kBuckets = 65;

    std::uint64_t accesses = 0;          ///< every reference, sampled or not
    std::uint64_t sampled_accesses = 0;  ///< references that carried an event
    std::uint64_t cold_misses = 0;
    std::uint64_t distinct_addresses = 0;
    double score_sum = 0.0;  ///< flushed sum of count * log2(d+1) run terms

    /// Run-length score accumulator: the current run of equal distances.
    std::uint64_t pending_distance = 0;
    std::uint64_t pending_count = 0;

    /// Sampling configuration (mirrors the engine's; affects scaling and
    /// denominators only — see file comment).
    bool sampled_mode = false;
    double sample_rate = 1.0;
    double inv_rate = 1.0;

    std::array<std::uint64_t, kBuckets> distance_count{};
    std::array<std::uint64_t, kBuckets> time_count{};  ///< finite reuse times
    /// Exact integer reuse-time sums per bucket. 128 bits: a bucket-b sum is
    /// bounded by count * 2^b and the clock itself is < 2^64, so no stream
    /// can overflow this.
    std::array<unsigned __int128, kBuckets> time_sum{};

    void set_mode(bool sampled, double rate) {
        sampled_mode = sampled;
        sample_rate = sampled ? rate : 1.0;
        inv_rate = sampled && rate > 0.0 ? 1.0 / rate : 1.0;
    }

    /// Fold one reuse event into the histograms.
    void note(const ReuseDistanceProfiler::Event& e) { note_run(e, 1); }

    /// Fold \p n consecutive identical events — bit-identical to calling
    /// note(e) n times (integer adds are associative; the score run-length
    /// state advances the same way).
    void note_run(const ReuseDistanceProfiler::Event& e, std::uint64_t n) {
        accesses += n;
        if (!e.sampled) return;
        sampled_accesses += n;
        if (e.cold) {
            // Cold contract: first-touch distance and time are *infinite* —
            // whatever the event's numeric fields hold, they never reach the
            // finite histograms or the score.
            cold_misses += n;
            return;
        }
        std::uint64_t d = e.distance;
        if (sampled_mode) {
            d = static_cast<std::uint64_t>(
                std::llround(static_cast<double>(d) * inv_rate));
        }
        distance_count[std::bit_width(d)] += n;
        if (pending_count != 0 && pending_distance == d) {
            pending_count += n;
        } else {
            flush_score();
            pending_distance = d;
            pending_count = n;
        }
        const unsigned tb = std::bit_width(e.time);
        time_count[tb] += n;
        time_sum[tb] += static_cast<unsigned __int128>(e.time) * n;
    }

    /// Profiles are bit-identical: every counter, histogram bucket, and the
    /// score accumulator state match exactly (mode fields are excluded, so an
    /// exact profile and a rate-1.0 sampled profile of the same stream
    /// compare equal).
    bool identical(const LocalityProfile& o) const {
        return accesses == o.accesses && sampled_accesses == o.sampled_accesses &&
               cold_misses == o.cold_misses &&
               distinct_addresses == o.distinct_addresses && score_sum == o.score_sum &&
               pending_distance == o.pending_distance &&
               pending_count == o.pending_count && distance_count == o.distance_count &&
               time_count == o.time_count && time_sum == o.time_sum;
    }

    /// Mean log2(d+1) over finite-distance references; 0 when there are none.
    double locality_score() const;

    /// Fraction of references with distance < 2^level — the hit ratio of an
    /// LRU memory spanning HMM levels 0..level. Cold misses miss everywhere.
    double hit_fraction(unsigned level) const;

    /// Average working-set size w(2^j) over the stream (Denning-Schwartz).
    double working_set(unsigned j) const;

    /// Smallest L such that every finite distance is < 2^L (i.e. the highest
    /// occupied bucket index + ... = one past the last level that still adds
    /// hits). At least 1 so tables always have a row.
    unsigned max_level() const;

    /// `dbsp-locality-v2` JSON document fragment.
    report::Json to_json() const;

    /// Paper-style text report (histogram + per-level hit ratios + w(tau)).
    void print(std::FILE* out, const std::string& title) const;

private:
    void flush_score() {
        if (pending_count != 0) {
            // d = 0 contributes count * log2(1) = count * 0.0; adding +0.0 to
            // a (always non-negative, non-NaN) sum is a bitwise no-op, so the
            // dominant zero-distance runs skip the FP work entirely. The
            // one-entry log2 cache absorbs the alternating d/0/d/0 pattern of
            // multi-touch bulk ops (one log2 per *distinct* flushed distance).
            if (pending_distance != 0) {
                if (pending_distance != cached_distance) {
                    cached_distance = pending_distance;
                    cached_log = std::log2(static_cast<double>(pending_distance) + 1.0);
                }
                score_sum += static_cast<double>(pending_count) * cached_log;
            }
            pending_count = 0;
        }
    }
    /// score_sum including the pending run, without mutating state.
    double score_total() const {
        double s = score_sum;
        if (pending_count != 0 && pending_distance != 0) {
            s += static_cast<double>(pending_count) *
                 std::log2(static_cast<double>(pending_distance) + 1.0);
        }
        return s;
    }
    /// Sample-corrected distinct-address estimate (identity in exact mode).
    double distinct_estimate() const {
        return static_cast<double>(distinct_addresses) * (sampled_mode ? inv_rate : 1.0);
    }

    /// flush_score() memo (derived state, excluded from identical()): the
    /// last flushed non-zero distance and its log2(d+1).
    std::uint64_t cached_distance = 0;
    double cached_log = 0.0;
};

}  // namespace dbsp::locality
