#pragma once

/// \file reuse_tree.hpp
/// Order-statistics treap over the LRU stack. The reuse-distance engine keys
/// every resident address by its last-use timestamp (a strictly increasing
/// counter), so the LRU stack *is* the set of live timestamps ordered by key,
/// and the stack depth of an address equals the number of keys greater than
/// its timestamp. Subtree sizes make that rank query O(log n); heap
/// priorities derived by hashing the key keep the tree balanced in
/// expectation without any RNG state, so runs are deterministic.

#include <cstdint>
#include <vector>

namespace dbsp::locality {

class ReuseTree {
public:
    /// Insert \p key, which must not be present. The profiler only ever
    /// inserts the current timestamp (greater than every live key), but the
    /// implementation accepts any unique key — the tests exercise both.
    void insert(std::uint64_t key);

    /// Remove \p key; no-op if absent.
    void erase(std::uint64_t key);

    /// Number of live keys strictly greater than \p key. With timestamp
    /// keys this is the LRU stack depth above the queried last-use time,
    /// i.e. the reuse distance.
    std::uint64_t count_greater(std::uint64_t key) const;

    std::uint64_t size() const { return root_ == kNil ? 0 : nodes_[root_].size; }

    void clear();

private:
    static constexpr std::int32_t kNil = -1;

    struct Node {
        std::uint64_t key;
        std::uint64_t prio;
        std::uint64_t size;
        std::int32_t left;
        std::int32_t right;
    };

    std::uint64_t size_of(std::int32_t t) const { return t == kNil ? 0 : nodes_[t].size; }
    void pull(std::int32_t t) {
        nodes_[t].size = 1 + size_of(nodes_[t].left) + size_of(nodes_[t].right);
    }
    std::int32_t make_node(std::uint64_t key);
    void free_node(std::int32_t t);
    /// Split by key: keys <= \p key into \p l, keys > \p key into \p r.
    void split(std::int32_t t, std::uint64_t key, std::int32_t& l, std::int32_t& r);
    std::int32_t merge(std::int32_t l, std::int32_t r);
    std::int32_t erase_rec(std::int32_t t, std::uint64_t key);

    std::vector<Node> nodes_;
    std::vector<std::int32_t> free_;
    std::int32_t root_ = kNil;
};

}  // namespace dbsp::locality
