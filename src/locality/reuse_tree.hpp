#pragma once

/// \file reuse_tree.hpp
/// Order-statistics treap over the LRU stack, with *run-compressed* nodes
/// and a detached *hot tail*. The reuse-distance engine keys every resident
/// address by its last-use timestamp (a strictly increasing counter), so the
/// LRU stack *is* the set of live timestamps ordered by key, and the stack
/// depth of an address equals the number of keys greater than its timestamp.
///
/// Timestamps from bulk operations arrive as arithmetic runs (first,
/// first+stride, ...), and surviving stamps stay clustered, so the live set
/// compresses into a few contiguous runs. Each node therefore stores a whole
/// run {first, stride, count}; subtree sizes aggregate *stamp* counts, so
/// rank queries stay O(depth) with within-run ranks computed arithmetically.
/// This is what makes the exact engine cheap: the tree holds thousands of
/// nodes where a per-stamp tree would hold millions, so every walk touches a
/// cache-resident structure.
///
/// The maximum run — where every new timestamp lands — is held in three
/// scalar members instead of a tree node. Extending it (insert of the
/// current clock, append_run of a bulk op's stamps) and consuming it (the
/// re-access of the range just touched, the same-address-twice rewrite) are
/// O(1) with no walks at all; the tail is flushed into the tree as one node
/// only when a non-contiguous run starts. Every query answer depends only on
/// the live key *set*, never on the tail/tree partition, node fragmentation,
/// or tree shape, so mixing batched and per-key updates yields bit-identical
/// counts — the property the engine's bit-identity contract rests on.

#include <cstdint>
#include <vector>

namespace dbsp::locality {

class ReuseTree {
public:
    /// Insert \p key, which must not be present. The profiler only ever
    /// inserts the current timestamp (greater than every live key, which
    /// extends the hot tail in O(1)), but the implementation accepts any
    /// unique key — the tests exercise both.
    void insert(std::uint64_t key);

    /// Remove \p key; no-op if absent.
    void erase(std::uint64_t key) { (void)erase_ranked(key); }

    /// Remove \p key and return the number of live keys strictly greater
    /// than it — count_greater(key) and erase(key) fused into one descent
    /// (the engine's per-cell path does exactly this pair). If \p key is
    /// absent the tree is unchanged and the rank alone is returned.
    std::uint64_t erase_ranked(std::uint64_t key);

    /// Append the run \p first, first+stride, ..., first+(count-1)*stride
    /// (stride >= 1 when count > 1). Every appended key must exceed every
    /// live key (the engine appends the final timestamps of a bulk op, all
    /// newer than anything live). Extends the hot tail in O(1) when the
    /// stride continues it; otherwise the tail is flushed into the tree
    /// (one O(log n) merge) and the run becomes the new tail.
    void append_run(std::uint64_t first, std::uint64_t stride, std::uint64_t count);

    /// If exactly \p expected live keys lie in [lo, hi], erase them all and
    /// return true; otherwise leave the tree unchanged and return false.
    /// Either way *above_out (when non-null) receives the number of live
    /// keys > hi. The back-to-back re-access pattern — the span is exactly
    /// the hot tail — is O(1); a span that is exactly one tree node is one
    /// descent; the general case costs two rank walks plus two splits, and
    /// a failed check is read-only.
    ///
    /// This is the batched eviction check of the engine's closed-form path:
    /// "expected == span population" certifies that no stranger timestamp
    /// interleaves the run, which is exactly the condition under which an
    /// ascending re-access run has one constant stack distance.
    bool erase_span_exact(std::uint64_t lo, std::uint64_t hi, std::uint64_t expected,
                          std::uint64_t* above_out);

    /// If \p old_key is the maximum live key, replace it with \p new_key
    /// (which must exceed every live key) and return true; return false
    /// without touching the tree otherwise. This is the cheap path for the
    /// extremely common "touch the same address twice in a row" reference.
    bool replace_max(std::uint64_t old_key, std::uint64_t new_key);

    /// Number of live keys strictly greater than \p key. With timestamp
    /// keys this is the LRU stack depth above the queried last-use time,
    /// i.e. the reuse distance.
    std::uint64_t count_greater(std::uint64_t key) const;

    /// Live stamp count (not node count — runs are transparent).
    std::uint64_t size() const {
        return (root_ == kNil ? 0 : nodes_[root_].size) + tail_count_;
    }

    void clear();

private:
    static constexpr std::int32_t kNil = -1;

    struct Node {
        std::uint64_t first;
        std::uint64_t stride;
        std::uint64_t count;  ///< stamps in this run
        std::uint64_t prio;
        std::uint64_t size;  ///< stamps in this subtree
        std::int32_t left;
        std::int32_t right;
    };

    static std::uint64_t last_of(const Node& n) {
        return n.first + (n.count - 1) * n.stride;
    }
    std::uint64_t tail_last() const {
        return tail_first_ + (tail_count_ - 1) * tail_stride_;
    }
    std::uint64_t size_of(std::int32_t t) const { return t == kNil ? 0 : nodes_[t].size; }
    void pull(std::int32_t t) {
        nodes_[t].size =
            nodes_[t].count + size_of(nodes_[t].left) + size_of(nodes_[t].right);
    }
    std::int32_t make_node(std::uint64_t first, std::uint64_t stride, std::uint64_t count);
    void free_node(std::int32_t t);
    void free_subtree(std::int32_t t);
    /// Push the hot tail into the tree as one node (no-op when empty).
    void flush_tail();
    /// Split by key: stamps <= \p key into \p l, stamps > \p key into \p r.
    /// A run straddling the boundary is clipped into two fragment nodes.
    void split(std::int32_t t, std::uint64_t key, std::int32_t& l, std::int32_t& r);
    std::int32_t merge(std::int32_t l, std::int32_t r);
    /// count_greater over the tree part only (tail handled by callers).
    std::uint64_t tree_count_greater(std::uint64_t key) const;
    /// Descend the right spine to the maximum tree run, recording the path
    /// in spine_. Returns kNil on an empty tree.
    std::int32_t find_max(std::int32_t t);

    std::vector<Node> nodes_;
    std::vector<std::int32_t> free_;
    std::vector<std::int32_t> spine_;  ///< right-spine scratch for in-place edits
    std::int32_t root_ = kNil;

    /// Hot tail: the maximum run, kept out of the tree. Empty iff
    /// tail_count_ == 0; when present, every tail key exceeds every tree key.
    std::uint64_t tail_first_ = 0;
    std::uint64_t tail_stride_ = 1;
    std::uint64_t tail_count_ = 0;
    /// Monotone upper bound on the largest tree key ever held (never
    /// lowered by erases — only used as a conservative "may a fresh tail
    /// start above the tree?" test for out-of-order inserts).
    std::uint64_t max_key_ = 0;
};

}  // namespace dbsp::locality
