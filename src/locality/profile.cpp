#include "locality/profile.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/table.hpp"

namespace dbsp::locality {

void LocalityProfile::note(const ReuseDistanceProfiler::Event& e) {
    ++accesses;
    if (e.cold) {
        ++cold_misses;
        return;
    }
    distance_count[std::bit_width(e.distance)] += 1;
    score_sum += std::log2(static_cast<double>(e.distance) + 1.0);
    const unsigned tb = std::bit_width(e.time);
    time_count[tb] += 1;
    time_sum[tb] += static_cast<double>(e.time);
}

double LocalityProfile::locality_score() const {
    const std::uint64_t finite = accesses - cold_misses;
    return finite > 0 ? score_sum / static_cast<double>(finite) : 0.0;
}

double LocalityProfile::hit_fraction(unsigned level) const {
    if (accesses == 0) return 0.0;
    std::uint64_t hits = 0;
    for (unsigned b = 0; b <= std::min(level, kBuckets - 1); ++b) hits += distance_count[b];
    return static_cast<double>(hits) / static_cast<double>(accesses);
}

double LocalityProfile::working_set(unsigned j) const {
    if (accesses == 0) return 0.0;
    const double tau = std::ldexp(1.0, static_cast<int>(j));
    // Denning-Schwartz: w(tau) = (1/T) sum_i min(r_i, tau); a reuse time r
    // lands in bucket bit_width(r), so r < tau = 2^j iff its bucket is <= j.
    double sum = 0.0;
    std::uint64_t truncated = cold_misses;  // cold references count tau
    for (unsigned b = 0; b < kBuckets; ++b) {
        if (b <= j) {
            sum += time_sum[b];
        } else {
            truncated += time_count[b];
        }
    }
    sum += tau * static_cast<double>(truncated);
    const double w = sum / static_cast<double>(accesses);
    // Stream-boundary cap: a finite trace can never hold a window with more
    // distinct addresses than it touched in total.
    return std::min(w, static_cast<double>(distinct_addresses));
}

unsigned LocalityProfile::max_level() const {
    unsigned top = 1;
    for (unsigned b = 0; b < kBuckets; ++b) {
        if (distance_count[b] != 0) top = std::max(top, b);
    }
    return top;
}

report::Json LocalityProfile::to_json() const {
    report::Json j = report::Json::object();
    j.set("schema", "dbsp-locality-v1");
    j.set("accesses", accesses);
    j.set("distinct_addresses", distinct_addresses);
    j.set("cold_misses", cold_misses);
    j.set("locality_score", locality_score());

    const unsigned top = max_level();
    report::Json dist = report::Json::object();
    report::Json counts = report::Json::array();
    report::Json cdf = report::Json::array();
    for (unsigned b = 0; b <= top; ++b) {
        counts.push_back(distance_count[b]);
        cdf.push_back(hit_fraction(b));
    }
    dist.set("log2_bucket_count", std::move(counts));
    dist.set("cdf", std::move(cdf));
    j.set("reuse_distance", std::move(dist));

    report::Json ws = report::Json::object();
    report::Json taus = report::Json::array();
    report::Json w = report::Json::array();
    for (unsigned b = 0; b <= top; ++b) {
        taus.push_back(std::ldexp(1.0, static_cast<int>(b)));
        w.push_back(working_set(b));
    }
    ws.set("tau", std::move(taus));
    ws.set("w", std::move(w));
    j.set("working_set", std::move(ws));

    report::Json levels = report::Json::array();
    for (unsigned l = 0; l <= top; ++l) {
        report::Json row = report::Json::object();
        row.set("level", static_cast<std::uint64_t>(l));
        row.set("capacity", std::ldexp(1.0, static_cast<int>(l)));
        row.set("share", accesses > 0 ? static_cast<double>(distance_count[l]) /
                                            static_cast<double>(accesses)
                                      : 0.0);
        row.set("hit_ratio", hit_fraction(l));
        levels.push_back(std::move(row));
    }
    j.set("levels", std::move(levels));
    return j;
}

void LocalityProfile::print(std::FILE* out, const std::string& title) const {
    std::fprintf(out,
                 "locality profile (%s): %llu references, %llu distinct addresses, "
                 "%llu cold misses, locality score %.3f\n",
                 title.c_str(), static_cast<unsigned long long>(accesses),
                 static_cast<unsigned long long>(distinct_addresses),
                 static_cast<unsigned long long>(cold_misses), locality_score());
    if (accesses == 0) return;

    const unsigned top = max_level();
    Table table({"level", "distance band", "capacity", "refs", "share", "hit ratio"});
    for (unsigned l = 0; l <= top; ++l) {
        char band[32];
        if (l == 0) {
            std::snprintf(band, sizeof band, "d = 0");
        } else {
            std::snprintf(band, sizeof band, "[2^%u, 2^%u)", l - 1, l);
        }
        char capacity[32];
        std::snprintf(capacity, sizeof capacity, "2^%u", l);
        table.add_row({std::to_string(l), band, capacity,
                       std::to_string(distance_count[l]),
                       Table::fmt(static_cast<double>(distance_count[l]) /
                                  static_cast<double>(accesses)),
                       Table::fmt(hit_fraction(l))});
    }
    std::fprintf(out, "%s", table.str().c_str());

    Table ws({"tau", "w(tau)"});
    for (unsigned b = 0; b <= top; b += 2) {
        ws.add_row_values({std::ldexp(1.0, static_cast<int>(b)), working_set(b)});
    }
    std::fprintf(out, "working-set curve (Denning, tau in references):\n%s",
                 ws.str().c_str());
}

}  // namespace dbsp::locality
