#include "locality/profile.hpp"

#include <algorithm>
#include <cmath>

#include "util/table.hpp"

namespace dbsp::locality {

double LocalityProfile::locality_score() const {
    const std::uint64_t finite = sampled_accesses - cold_misses;
    return finite > 0 ? score_total() / static_cast<double>(finite) : 0.0;
}

double LocalityProfile::hit_fraction(unsigned level) const {
    if (sampled_accesses == 0) return 0.0;
    std::uint64_t hits = 0;
    for (unsigned b = 0; b <= std::min(level, kBuckets - 1); ++b) hits += distance_count[b];
    return static_cast<double>(hits) / static_cast<double>(sampled_accesses);
}

double LocalityProfile::working_set(unsigned j) const {
    if (sampled_accesses == 0) return 0.0;
    const double tau = std::ldexp(1.0, static_cast<int>(j));
    // Denning-Schwartz: w(tau) = (1/T) sum_i min(r_i, tau); a reuse time r
    // lands in bucket bit_width(r), so r < tau = 2^j iff its bucket is <= j.
    double sum = 0.0;
    std::uint64_t truncated = cold_misses;  // cold references count tau
    for (unsigned b = 0; b < kBuckets; ++b) {
        if (b <= j) {
            sum += static_cast<double>(time_sum[b]);
        } else {
            truncated += time_count[b];
        }
    }
    sum += tau * static_cast<double>(truncated);
    const double w = sum / static_cast<double>(sampled_accesses);
    // Stream-boundary cap: a finite trace can never hold a window with more
    // distinct addresses than it touched in total.
    return std::min(w, distinct_estimate());
}

unsigned LocalityProfile::max_level() const {
    unsigned top = 1;
    for (unsigned b = 0; b < kBuckets; ++b) {
        if (distance_count[b] != 0) top = std::max(top, b);
    }
    return top;
}

report::Json LocalityProfile::to_json() const {
    report::Json j = report::Json::object();
    j.set("schema", "dbsp-locality-v2");
    j.set("mode", sampled_mode ? "sampled" : "exact");
    j.set("sample_rate", sample_rate);
    j.set("accesses", accesses);
    j.set("sampled_accesses", sampled_accesses);
    j.set("distinct_addresses", distinct_addresses);
    if (sampled_mode) j.set("estimated_distinct", distinct_estimate());
    j.set("cold_misses", cold_misses);
    j.set("locality_score", locality_score());

    const unsigned top = max_level();
    report::Json dist = report::Json::object();
    report::Json counts = report::Json::array();
    report::Json cdf = report::Json::array();
    for (unsigned b = 0; b <= top; ++b) {
        counts.push_back(distance_count[b]);
        cdf.push_back(hit_fraction(b));
    }
    dist.set("log2_bucket_count", std::move(counts));
    dist.set("cdf", std::move(cdf));
    j.set("reuse_distance", std::move(dist));

    report::Json ws = report::Json::object();
    report::Json taus = report::Json::array();
    report::Json w = report::Json::array();
    for (unsigned b = 0; b <= top; ++b) {
        taus.push_back(std::ldexp(1.0, static_cast<int>(b)));
        w.push_back(working_set(b));
    }
    ws.set("tau", std::move(taus));
    ws.set("w", std::move(w));
    j.set("working_set", std::move(ws));

    report::Json levels = report::Json::array();
    for (unsigned l = 0; l <= top; ++l) {
        report::Json row = report::Json::object();
        row.set("level", static_cast<std::uint64_t>(l));
        row.set("capacity", std::ldexp(1.0, static_cast<int>(l)));
        row.set("share", sampled_accesses > 0
                             ? static_cast<double>(distance_count[l]) /
                                   static_cast<double>(sampled_accesses)
                             : 0.0);
        row.set("hit_ratio", hit_fraction(l));
        levels.push_back(std::move(row));
    }
    j.set("levels", std::move(levels));
    return j;
}

void LocalityProfile::print(std::FILE* out, const std::string& title) const {
    std::fprintf(out,
                 "locality profile (%s): %llu references, %llu distinct addresses, "
                 "%llu cold misses, locality score %.3f\n",
                 title.c_str(), static_cast<unsigned long long>(accesses),
                 static_cast<unsigned long long>(distinct_addresses),
                 static_cast<unsigned long long>(cold_misses), locality_score());
    if (sampled_mode) {
        std::fprintf(out,
                     "  mode: sampled @ rate %.4g (%llu sampled references, "
                     "~%.0f distinct estimated)\n",
                     sample_rate, static_cast<unsigned long long>(sampled_accesses),
                     distinct_estimate());
    }
    if (sampled_accesses == 0) return;

    const unsigned top = max_level();
    Table table({"level", "distance band", "capacity", "refs", "share", "hit ratio"});
    for (unsigned l = 0; l <= top; ++l) {
        char band[32];
        if (l == 0) {
            std::snprintf(band, sizeof band, "d = 0");
        } else {
            std::snprintf(band, sizeof band, "[2^%u, 2^%u)", l - 1, l);
        }
        char capacity[32];
        std::snprintf(capacity, sizeof capacity, "2^%u", l);
        table.add_row({std::to_string(l), band, capacity,
                       std::to_string(distance_count[l]),
                       Table::fmt(static_cast<double>(distance_count[l]) /
                                  static_cast<double>(sampled_accesses)),
                       Table::fmt(hit_fraction(l))});
    }
    std::fprintf(out, "%s", table.str().c_str());

    Table ws({"tau", "w(tau)"});
    for (unsigned b = 0; b <= top; b += 2) {
        ws.add_row_values({std::ldexp(1.0, static_cast<int>(b)), working_set(b)});
    }
    std::fprintf(out, "working-set curve (Denning, tau in references):\n%s",
                 ws.str().c_str());
}

}  // namespace dbsp::locality
