#include "locality/reuse_tree.hpp"

namespace dbsp::locality {

namespace {

/// SplitMix64 finalizer: a deterministic, well-mixed priority per key.
std::uint64_t priority_of(std::uint64_t key) {
    std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

}  // namespace

std::int32_t ReuseTree::make_node(std::uint64_t first, std::uint64_t stride,
                                  std::uint64_t count) {
    std::int32_t t;
    if (!free_.empty()) {
        t = free_.back();
        free_.pop_back();
    } else {
        t = static_cast<std::int32_t>(nodes_.size());
        nodes_.emplace_back();
    }
    // Singleton runs get a canonical stride so run arithmetic never divides
    // by zero and extend-by-one can pick any larger key.
    if (count == 1) stride = 1;
    nodes_[t] = Node{first, stride, count, priority_of(first), count, kNil, kNil};
    return t;
}

void ReuseTree::free_node(std::int32_t t) { free_.push_back(t); }

void ReuseTree::free_subtree(std::int32_t t) {
    if (t == kNil) return;
    free_subtree(nodes_[t].left);
    free_subtree(nodes_[t].right);
    free_.push_back(t);
}

void ReuseTree::flush_tail() {
    if (tail_count_ == 0) return;
    max_key_ = tail_last();
    const std::uint64_t first = tail_first_;
    const std::uint64_t stride = tail_stride_;
    const std::uint64_t count = tail_count_;
    tail_count_ = 0;
    root_ = merge(root_, make_node(first, stride, count));
}

void ReuseTree::split(std::int32_t t, std::uint64_t key, std::int32_t& l, std::int32_t& r) {
    if (t == kNil) {
        l = kNil;
        r = kNil;
        return;
    }
    // Recurse through locals, not through nodes_[t] references: the clip
    // branch allocates, and a vector reallocation would dangle them.
    if (last_of(nodes_[t]) <= key) {
        std::int32_t cl = kNil;
        std::int32_t cr = kNil;
        split(nodes_[t].right, key, cl, cr);
        nodes_[t].right = cl;
        r = cr;
        l = t;
        pull(t);
    } else if (nodes_[t].first > key) {
        std::int32_t cl = kNil;
        std::int32_t cr = kNil;
        split(nodes_[t].left, key, cl, cr);
        nodes_[t].left = cr;
        l = cl;
        r = t;
        pull(t);
    } else {
        // first <= key < last: clip the run. The left fragment keeps the
        // node (its first key, hence its priority, is unchanged, so heap
        // order on the l side is untouched); the right fragment is a fresh
        // node merged into the old right subtree, which re-establishes heap
        // order on the r side.
        const std::uint64_t m = (key - nodes_[t].first) / nodes_[t].stride + 1;
        const std::uint64_t frag_first = nodes_[t].first + m * nodes_[t].stride;
        const std::uint64_t frag_stride = nodes_[t].stride;
        const std::uint64_t frag_count = nodes_[t].count - m;
        const std::int32_t old_right = nodes_[t].right;
        const std::int32_t u = make_node(frag_first, frag_stride, frag_count);
        r = merge(u, old_right);
        nodes_[t].count = m;
        nodes_[t].right = kNil;
        pull(t);
        l = t;
    }
}

std::int32_t ReuseTree::merge(std::int32_t l, std::int32_t r) {
    if (l == kNil) return r;
    if (r == kNil) return l;
    if (nodes_[l].prio > nodes_[r].prio) {
        nodes_[l].right = merge(nodes_[l].right, r);
        pull(l);
        return l;
    }
    nodes_[r].left = merge(l, nodes_[r].left);
    pull(r);
    return r;
}

std::int32_t ReuseTree::find_max(std::int32_t t) {
    spine_.clear();
    if (t == kNil) return kNil;
    while (nodes_[t].right != kNil) {
        spine_.push_back(t);
        t = nodes_[t].right;
    }
    return t;
}

void ReuseTree::insert(std::uint64_t key) {
    if (tail_count_ != 0) {
        const std::uint64_t tlast = tail_last();
        if (key > tlast) {
            // New maximum: extend the tail in place when the stride allows
            // (always for a singleton), else flush it and restart — O(1)
            // amortized, no walks.
            if (tail_count_ == 1) {
                tail_stride_ = key - tail_first_;
                tail_count_ = 2;
                return;
            }
            if (key - tlast == tail_stride_) {
                ++tail_count_;
                return;
            }
            flush_tail();
        } else {
            // Out-of-order insert below (or inside the span of) the tail:
            // demote the tail to a tree node and take the generic path.
            flush_tail();
        }
    } else if (root_ == kNil || key > max_key_) {
        // Provably above every tree key: start a fresh tail.
        tail_first_ = key;
        tail_stride_ = 1;
        tail_count_ = 1;
        return;
    }
    if (tail_count_ == 0 && key > max_key_) {
        tail_first_ = key;
        tail_stride_ = 1;
        tail_count_ = 1;
        return;
    }
    std::int32_t l = kNil;
    std::int32_t r = kNil;
    split(root_, key, l, r);
    root_ = merge(merge(l, make_node(key, 1, 1)), r);
    if (key > max_key_) max_key_ = key;
}

std::uint64_t ReuseTree::erase_ranked(std::uint64_t key) {
    std::uint64_t above = 0;
    if (tail_count_ != 0) {
        if (key >= tail_first_) {
            // The key can only live in the tail (every tree key is below
            // tail_first_): pure run arithmetic, no walks.
            const std::uint64_t tlast = tail_last();
            if (key > tlast) return 0;
            const std::uint64_t off = key - tail_first_;
            const std::uint64_t idx = off / tail_stride_;
            above = tail_count_ - idx - 1;
            if (off % tail_stride_ != 0) return above;  // off-grid: absent
            if (idx == 0) {
                tail_first_ += tail_stride_;
                if (--tail_count_ == 0) tail_stride_ = 1;
            } else if (idx == tail_count_ - 1) {
                --tail_count_;
            } else {
                // Middle of the tail: the part below the hole is no longer
                // contiguous with the maximum — push it into the tree and
                // keep the upper part as the tail.
                const std::uint64_t low_first = tail_first_;
                const std::uint64_t low_count = idx;
                max_key_ = tail_first_ + (idx - 1) * tail_stride_;
                tail_first_ += (idx + 1) * tail_stride_;
                tail_count_ -= idx + 1;
                root_ = merge(root_, make_node(low_first, tail_stride_, low_count));
            }
            return above;
        }
        above = tail_count_;  // the whole tail sits above the key
    }
    // One descent accumulates the rank and lands on the run containing key.
    spine_.clear();
    std::int32_t t = root_;
    while (t != kNil) {
        const Node& n = nodes_[t];
        if (key < n.first) {
            above += n.count + size_of(n.right);
            spine_.push_back(t);
            t = n.left;
        } else if (key > last_of(n)) {
            spine_.push_back(t);
            t = n.right;
        } else {
            break;
        }
    }
    if (t == kNil) return above;  // key falls in a gap between runs
    const std::uint64_t off = key - nodes_[t].first;
    const std::uint64_t idx = off / nodes_[t].stride;
    above += size_of(nodes_[t].right) + (nodes_[t].count - idx - 1);
    if (off % nodes_[t].stride != 0) return above;  // within span but off-grid
    if (nodes_[t].count == 1) {
        const std::int32_t sub = merge(nodes_[t].left, nodes_[t].right);
        if (spine_.empty()) {
            root_ = sub;
        } else {
            Node& parent = nodes_[spine_.back()];
            (parent.left == t ? parent.left : parent.right) = sub;
            for (const std::int32_t p : spine_) --nodes_[p].size;
        }
        free_node(t);
        return above;
    }
    if (idx == 0) {
        nodes_[t].first += nodes_[t].stride;
        --nodes_[t].count;
    } else if (idx == nodes_[t].count - 1) {
        --nodes_[t].count;
    } else {
        // Middle of the run: keep the left part in this node and hang the
        // right part off its right subtree. The fragment's fresh priority
        // may locally exceed an ancestor's — harmless: heap order is only a
        // balance heuristic here, every query depends on BST order and
        // sizes alone.
        const std::uint64_t frag_first = nodes_[t].first + (idx + 1) * nodes_[t].stride;
        const std::uint64_t frag_stride = nodes_[t].stride;
        const std::uint64_t frag_count = nodes_[t].count - idx - 1;
        const std::int32_t old_right = nodes_[t].right;
        const std::int32_t u = make_node(frag_first, frag_stride, frag_count);
        nodes_[t].count = idx;
        nodes_[t].right = merge(u, old_right);
    }
    pull(t);
    for (const std::int32_t p : spine_) --nodes_[p].size;
    return above;
}

void ReuseTree::append_run(std::uint64_t first, std::uint64_t stride, std::uint64_t count) {
    if (count == 0) return;
    if (tail_count_ != 0) {
        const std::uint64_t tlast = tail_last();
        if (first - tlast == stride && (tail_count_ == 1 || tail_stride_ == stride)) {
            // The appended run continues the tail's arithmetic sequence:
            // absorb it in place. Back-to-back bulk ops take this path, so
            // the whole recent history stays one run.
            tail_stride_ = stride;
            tail_count_ += count;
            return;
        }
        flush_tail();
    }
    // Every appended key exceeds every live key (contract), so the run is
    // always eligible to be the fresh tail.
    tail_first_ = first;
    tail_stride_ = count == 1 ? 1 : stride;
    tail_count_ = count;
}

bool ReuseTree::erase_span_exact(std::uint64_t lo, std::uint64_t hi, std::uint64_t expected,
                                 std::uint64_t* above_out) {
    if (tail_count_ != 0) {
        if (lo == tail_first_ && hi == tail_last()) {
            // Back-to-back re-access: the span is exactly the hot tail. Tree
            // keys are all below it, so the span population is the tail
            // itself and nothing sits above — O(1), no walks.
            if (above_out != nullptr) *above_out = 0;
            if (tail_count_ != expected) return false;
            tail_count_ = 0;
            tail_stride_ = 1;
            return true;
        }
        if (hi >= tail_first_) flush_tail();  // partial overlap: demote
    }
    const std::uint64_t tail_above = tail_count_;  // whole tail is > hi here
    // Fast path: the whole span is one tree run node (the run of an earlier
    // bulk op, untouched since). In-order nodes hold disjoint, ordered key
    // intervals, so a node whose run is *exactly* [lo, hi] certifies by
    // itself that no stranger stamp lies in the span, and its rank
    // accumulates for free during the descent.
    spine_.clear();
    std::uint64_t above = tail_above;
    std::int32_t t = root_;
    while (t != kNil) {
        const Node& n = nodes_[t];
        if (lo < n.first) {
            above += n.count + size_of(n.right);
            spine_.push_back(t);
            t = n.left;
        } else if (lo > last_of(n)) {
            spine_.push_back(t);
            t = n.right;
        } else {
            break;  // n's run contains lo
        }
    }
    if (t != kNil && nodes_[t].first == lo && last_of(nodes_[t]) == hi) {
        above += size_of(nodes_[t].right);
        if (above_out != nullptr) *above_out = above;
        if (nodes_[t].count != expected) return false;
        const std::int32_t sub = merge(nodes_[t].left, nodes_[t].right);
        if (spine_.empty()) {
            root_ = sub;
        } else {
            Node& parent = nodes_[spine_.back()];
            (parent.left == t ? parent.left : parent.right) = sub;
            for (const std::int32_t p : spine_) nodes_[p].size -= expected;
        }
        free_node(t);
        return true;
    }
    // Population check with two read-only rank walks: a mismatch (stranger
    // stamps in the span, or missing ones) costs no restructuring at all.
    const std::uint64_t tree_above = tree_count_greater(hi);
    if (above_out != nullptr) *above_out = tree_above + tail_above;
    const std::uint64_t in_span =
        (lo == 0 ? size_of(root_) : tree_count_greater(lo - 1)) - tree_above;
    if (in_span != expected) return false;
    if (expected == 0) return true;
    // General case: cut the span out with two splits (the population is
    // already known to match, so this always succeeds).
    std::int32_t low = kNil;
    std::int32_t rest = kNil;
    if (lo == 0) {
        rest = root_;
    } else {
        split(root_, lo - 1, low, rest);
    }
    std::int32_t mid = kNil;
    std::int32_t high = kNil;
    split(rest, hi, mid, high);
    free_subtree(mid);
    root_ = merge(low, high);
    return true;
}

bool ReuseTree::replace_max(std::uint64_t old_key, std::uint64_t new_key) {
    if (tail_count_ != 0) {
        if (tail_last() != old_key) return false;
        if (tail_count_ == 1) {
            tail_first_ = new_key;
            tail_stride_ = 1;
            return true;
        }
        // Shrink the tail by its last stamp and restart it at the new
        // maximum; the remainder joins the tree as one node.
        --tail_count_;
        flush_tail();
        tail_first_ = new_key;
        tail_stride_ = 1;
        tail_count_ = 1;
        return true;
    }
    const std::int32_t t = find_max(root_);
    if (t == kNil || last_of(nodes_[t]) != old_key) return false;
    if (nodes_[t].count == 1) {
        const std::int32_t sub = nodes_[t].left;  // max node has no right child
        if (spine_.empty()) {
            root_ = sub;
        } else {
            nodes_[spine_.back()].right = sub;
            for (const std::int32_t p : spine_) --nodes_[p].size;
        }
        free_node(t);
    } else {
        --nodes_[t].count;
        --nodes_[t].size;
        for (const std::int32_t p : spine_) --nodes_[p].size;
    }
    tail_first_ = new_key;
    tail_stride_ = 1;
    tail_count_ = 1;
    return true;
}

std::uint64_t ReuseTree::tree_count_greater(std::uint64_t key) const {
    std::uint64_t above = 0;
    std::int32_t t = root_;
    while (t != kNil) {
        const Node& n = nodes_[t];
        if (key < n.first) {
            above += n.count + size_of(n.right);
            t = n.left;
        } else if (key >= last_of(n)) {
            if (key == last_of(n)) {
                above += size_of(n.right);
                break;
            }
            t = n.right;
        } else {
            // Within the run's span: stamps > key are the run elements past
            // floor((key - first) / stride), counted arithmetically.
            const std::uint64_t le = (key - n.first) / n.stride + 1;
            above += (n.count - le) + size_of(n.right);
            break;
        }
    }
    return above;
}

std::uint64_t ReuseTree::count_greater(std::uint64_t key) const {
    if (tail_count_ != 0 && key >= tail_first_) {
        const std::uint64_t tlast = tail_last();
        if (key >= tlast) return 0;
        const std::uint64_t le = (key - tail_first_) / tail_stride_ + 1;
        return tail_count_ - le;
    }
    return (tail_count_ != 0 ? tail_count_ : 0) + tree_count_greater(key);
}

void ReuseTree::clear() {
    nodes_.clear();
    free_.clear();
    spine_.clear();
    root_ = kNil;
    tail_first_ = 0;
    tail_stride_ = 1;
    tail_count_ = 0;
    max_key_ = 0;
}

}  // namespace dbsp::locality
