#include "locality/reuse_tree.hpp"

namespace dbsp::locality {

namespace {

/// SplitMix64 finalizer: a deterministic, well-mixed priority per key.
std::uint64_t priority_of(std::uint64_t key) {
    std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

}  // namespace

std::int32_t ReuseTree::make_node(std::uint64_t key) {
    std::int32_t t;
    if (!free_.empty()) {
        t = free_.back();
        free_.pop_back();
    } else {
        t = static_cast<std::int32_t>(nodes_.size());
        nodes_.emplace_back();
    }
    nodes_[t] = Node{key, priority_of(key), 1, kNil, kNil};
    return t;
}

void ReuseTree::free_node(std::int32_t t) { free_.push_back(t); }

void ReuseTree::split(std::int32_t t, std::uint64_t key, std::int32_t& l, std::int32_t& r) {
    if (t == kNil) {
        l = kNil;
        r = kNil;
        return;
    }
    if (nodes_[t].key <= key) {
        split(nodes_[t].right, key, nodes_[t].right, r);
        l = t;
    } else {
        split(nodes_[t].left, key, l, nodes_[t].left);
        r = t;
    }
    pull(t);
}

std::int32_t ReuseTree::merge(std::int32_t l, std::int32_t r) {
    if (l == kNil) return r;
    if (r == kNil) return l;
    if (nodes_[l].prio > nodes_[r].prio) {
        nodes_[l].right = merge(nodes_[l].right, r);
        pull(l);
        return l;
    }
    nodes_[r].left = merge(l, nodes_[r].left);
    pull(r);
    return r;
}

void ReuseTree::insert(std::uint64_t key) {
    const std::int32_t n = make_node(key);
    std::int32_t l = kNil;
    std::int32_t r = kNil;
    split(root_, key, l, r);
    root_ = merge(merge(l, n), r);
}

std::int32_t ReuseTree::erase_rec(std::int32_t t, std::uint64_t key) {
    if (t == kNil) return kNil;
    if (nodes_[t].key == key) {
        const std::int32_t m = merge(nodes_[t].left, nodes_[t].right);
        free_node(t);
        return m;
    }
    if (key < nodes_[t].key) {
        nodes_[t].left = erase_rec(nodes_[t].left, key);
    } else {
        nodes_[t].right = erase_rec(nodes_[t].right, key);
    }
    pull(t);
    return t;
}

void ReuseTree::erase(std::uint64_t key) { root_ = erase_rec(root_, key); }

std::uint64_t ReuseTree::count_greater(std::uint64_t key) const {
    std::uint64_t above = 0;
    std::int32_t t = root_;
    while (t != kNil) {
        const Node& n = nodes_[t];
        if (key < n.key) {
            above += 1 + size_of(n.right);
            t = n.left;
        } else if (key > n.key) {
            t = n.right;
        } else {
            above += size_of(n.right);
            break;
        }
    }
    return above;
}

void ReuseTree::clear() {
    nodes_.clear();
    free_.clear();
    root_ = kNil;
}

}  // namespace dbsp::locality
