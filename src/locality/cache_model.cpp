#include "locality/cache_model.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

namespace dbsp::locality {

double predicted_miss_ratio(const LocalityProfile& profile, std::uint64_t capacity_words) {
    if (profile.sampled_accesses == 0) return 0.0;
    if (capacity_words == 0) return 1.0;
    // 2^(u-1) <= C < 2^u: buckets 0..u-1 hold d < 2^(u-1) <= C (all hits);
    // bucket u straddles C and is interpolated; buckets above u all miss.
    const unsigned u = static_cast<unsigned>(std::bit_width(capacity_words));
    std::uint64_t hits = 0;
    for (unsigned b = 0; b < u && b < LocalityProfile::kBuckets; ++b) {
        hits += profile.distance_count[b];
    }
    // Integer-exact at powers of two: the partial term is exactly 0 and the
    // result is double(misses)/double(refs) with both operands integral —
    // bit-identical to a brute-force LRU simulation's miss count ratio.
    double partial = 0.0;
    if (u < LocalityProfile::kBuckets) {
        const std::uint64_t lo = std::uint64_t{1} << (u - 1);
        partial = static_cast<double>(profile.distance_count[u]) *
                  (static_cast<double>(capacity_words - lo) / static_cast<double>(lo));
    }
    const double misses =
        static_cast<double>(profile.sampled_accesses - hits) - partial;
    return misses / static_cast<double>(profile.sampled_accesses);
}

bool prediction_is_exact(std::uint64_t capacity_words) {
    return std::has_single_bit(capacity_words) || capacity_words == 0;
}

namespace {

/// Parse a sysfs cache size string ("48K", "2048K", "8M", "107520K").
bool parse_size_bytes(const char* text, std::uint64_t& out) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text) return false;
    std::uint64_t mult = 1;
    switch (*end) {
        case 'K': mult = std::uint64_t{1} << 10; break;
        case 'M': mult = std::uint64_t{1} << 20; break;
        case 'G': mult = std::uint64_t{1} << 30; break;
        case '\0':
        case '\n': break;
        default: return false;
    }
    out = static_cast<std::uint64_t>(v) * mult;
    return true;
}

bool read_line(const std::string& path, char* buf, std::size_t len) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) return false;
    const bool ok = std::fgets(buf, static_cast<int>(len), f) != nullptr;
    std::fclose(f);
    if (!ok) return false;
    buf[std::strcspn(buf, "\n")] = '\0';
    return true;
}

}  // namespace

std::vector<CacheGeometry> host_cache_geometries(std::uint64_t word_bytes,
                                                 const std::string& sysfs_root) {
    std::vector<CacheGeometry> out;
    if (word_bytes == 0) return out;
    for (unsigned index = 0; index < 16; ++index) {
        const std::string dir = sysfs_root + "/index" + std::to_string(index);
        char level[32], type[32], size[32];
        if (!read_line(dir + "/level", level, sizeof level)) break;
        if (!read_line(dir + "/type", type, sizeof type) ||
            !read_line(dir + "/size", size, sizeof size)) {
            continue;
        }
        // Instruction caches never see the data stream the model predicts.
        if (std::strcmp(type, "Data") != 0 && std::strcmp(type, "Unified") != 0) continue;
        std::uint64_t bytes = 0;
        if (!parse_size_bytes(size, bytes) || bytes < word_bytes) continue;
        CacheGeometry g;
        g.name = std::string("L") + level + (std::strcmp(type, "Data") == 0 ? "d" : "");
        g.source = "sysfs";
        g.capacity_words = bytes / word_bytes;
        out.push_back(std::move(g));
    }
    return out;
}

std::vector<CacheGeometry> level_geometries(unsigned max_level) {
    std::vector<CacheGeometry> out;
    for (unsigned l = 1; l <= max_level && l < 64; ++l) {
        CacheGeometry g;
        g.name = "hmm-level-" + std::to_string(l);
        g.source = "model";
        g.capacity_words = std::uint64_t{1} << l;
        out.push_back(std::move(g));
    }
    return out;
}

report::Json cache_model_json(const LocalityProfile& profile,
                              const std::vector<CacheGeometry>& geometries) {
    report::Json j = report::Json::object();
    j.set("schema", "dbsp-cachemodel-v1");
    j.set("mode", profile.sampled_mode ? "sampled" : "exact");
    j.set("sample_rate", profile.sample_rate);
    j.set("accesses", profile.accesses);
    j.set("sampled_accesses", profile.sampled_accesses);
    j.set("cold_misses", profile.cold_misses);
    j.set("distinct_addresses", profile.distinct_addresses);
    j.set("cold_miss_ratio",
          profile.sampled_accesses > 0
              ? static_cast<double>(profile.cold_misses) /
                    static_cast<double>(profile.sampled_accesses)
              : 0.0);

    // The full curve at power-of-two capacities (every point exact). Beyond
    // max_level the curve is flat at the cold-miss ratio.
    const unsigned top = profile.max_level();
    report::Json mrc = report::Json::object();
    report::Json caps = report::Json::array();
    report::Json ratios = report::Json::array();
    for (unsigned l = 0; l <= top; ++l) {
        caps.push_back(static_cast<std::uint64_t>(l));
        ratios.push_back(predicted_miss_ratio(profile, std::uint64_t{1} << l));
    }
    mrc.set("log2_capacity_words", std::move(caps));
    mrc.set("miss_ratio", std::move(ratios));
    j.set("mrc", std::move(mrc));

    report::Json geos = report::Json::array();
    for (const CacheGeometry& g : geometries) {
        report::Json row = report::Json::object();
        row.set("name", g.name);
        row.set("source", g.source);
        row.set("capacity_words", g.capacity_words);
        row.set("exact", prediction_is_exact(g.capacity_words));
        row.set("predicted_miss_ratio", predicted_miss_ratio(profile, g.capacity_words));
        geos.push_back(std::move(row));
    }
    j.set("geometries", std::move(geos));
    return j;
}

}  // namespace dbsp::locality
