#pragma once

/// \file context_layout.hpp
/// Fixed word layout of a D-BSP processor context. The paper requires message
/// buffers to be part of each processor's local memory ("buffers for incoming
/// and outgoing messages are provided as part of the processor's local
/// memory"), which also caps the relation degree at h <= mu. The layout is:
///
///   [0, D)                         user data words
///   [D]                            outgoing message count
///   [D+1, D+1+3B)                  outgoing records: (dest, payload0, payload1)
///   [D+1+3B, D+1+6B)               incoming records: (src, payload0, payload1)
///   [D+1+6B]                       incoming message count
///
/// so the context size is mu = D + 2 + 6B words. The incoming count sits
/// *after* the incoming records so that a context image can be produced as a
/// single sequential stream (the BT simulator rebuilds contexts from sorted
/// records in one forward pass). Both the direct D-BSP machine and the HMM/BT
/// simulators operate on this exact layout, which is what makes bit-for-bit
/// functional equivalence between them testable.

#include <algorithm>
#include <span>

#include "util/contracts.hpp"

#include "model/types.hpp"

namespace dbsp::model {

struct ContextLayout {
    std::size_t data_words = 0;    ///< D: user-visible words.
    std::size_t max_messages = 0;  ///< B: per-superstep buffer capacity per direction.

    static constexpr std::size_t kRecordWords = 3;

    constexpr std::size_t out_count_offset() const { return data_words; }
    constexpr std::size_t out_records_offset() const { return data_words + 1; }
    constexpr std::size_t in_records_offset() const {
        return data_words + 1 + kRecordWords * max_messages;
    }
    constexpr std::size_t in_count_offset() const {
        return in_records_offset() + kRecordWords * max_messages;
    }

    /// Total context size mu in words.
    constexpr std::size_t context_words() const {
        return data_words + 2 + 2 * kRecordWords * max_messages;
    }

    constexpr std::size_t out_record_offset(std::size_t k) const {
        return out_records_offset() + kRecordWords * k;
    }
    constexpr std::size_t in_record_offset(std::size_t k) const {
        return in_records_offset() + kRecordWords * k;
    }
};

/// Abstract, cost-instrumented word storage for one processor context.
/// The direct machine backs it with a plain array; the HMM/BT simulators back
/// it with machine memory so every access is charged the model's cost.
class ContextAccessor {
public:
    virtual ~ContextAccessor() = default;
    virtual Word get(std::size_t index) const = 0;
    virtual void set(std::size_t index, Word value) = 0;

    /// Bulk read of the contiguous index range [index, index + out.size())
    /// into \p out. The default walks get() word by word; charged accessors
    /// override it to pay one virtual call and a fused per-cell charge loop
    /// for the whole range (bit-identical cost, memcpy-able data movement).
    virtual void get_range(std::size_t index, std::span<Word> out) const {
        for (std::size_t i = 0; i < out.size(); ++i) out[i] = get(index + i);
    }

    /// Bulk write of \p values onto [index, index + values.size()).
    virtual void set_range(std::size_t index, std::span<const Word> values) {
        for (std::size_t i = 0; i < values.size(); ++i) set(index + i, values[i]);
    }
};

/// Plain in-memory accessor over a caller-owned span of mu words.
class FlatContextAccessor final : public ContextAccessor {
public:
    FlatContextAccessor(Word* base, std::size_t size) : base_(base), size_(size) {}
    Word get(std::size_t index) const override {
        DBSP_REQUIRE(index < size_);
        return base_[index];
    }
    void set(std::size_t index, Word value) override {
        DBSP_REQUIRE(index < size_);
        base_[index] = value;
    }
    void get_range(std::size_t index, std::span<Word> out) const override {
        DBSP_REQUIRE(index + out.size() <= size_);
        std::copy_n(base_ + index, out.size(), out.begin());
    }
    void set_range(std::size_t index, std::span<const Word> values) override {
        DBSP_REQUIRE(index + values.size() <= size_);
        std::copy_n(values.begin(), values.size(), base_ + index);
    }

    /// Repoint this accessor at another context (accessor sources reuse one
    /// object across processors instead of constructing per call).
    void rebind(Word* base, std::size_t size) {
        base_ = base;
        size_ = size;
    }

private:
    Word* base_;
    std::size_t size_;
};

}  // namespace dbsp::model
