#include "model/dbsp_machine.hpp"

#include <algorithm>

#include "model/superstep_exec.hpp"
#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace dbsp::model {

std::vector<Word> DbspResult::data_of(ProcId p) const {
    DBSP_REQUIRE(p < contexts.size());
    const auto& ctx = contexts[p];
    return std::vector<Word>(ctx.begin(), ctx.begin() + static_cast<std::ptrdiff_t>(data_words));
}

double DbspResult::communication_time() const {
    double t = 0;
    for (const auto& s : supersteps) t += s.cost - static_cast<double>(std::max<std::uint64_t>(s.tau, 1));
    return t;
}

double DbspResult::computation_time() const {
    double t = 0;
    for (const auto& s : supersteps) t += static_cast<double>(std::max<std::uint64_t>(s.tau, 1));
    return t;
}

std::vector<std::vector<Word>> DbspMachine::initial_contexts(const Program& program) {
    const std::uint64_t v = program.num_processors();
    DBSP_REQUIRE(is_pow2(v));
    const std::size_t mu = program.context_words();
    std::vector<std::vector<Word>> contexts(v);
    for (ProcId p = 0; p < v; ++p) {
        contexts[p].assign(mu, 0);
        program.init(p, std::span<Word>(contexts[p].data(), program.data_words()));
    }
    return contexts;
}

DbspResult DbspMachine::run(Program& program) const {
    const std::uint64_t v = program.num_processors();
    const ClusterTree tree(v);
    const ContextLayout layout = program.layout();
    const std::size_t mu = layout.context_words();
    const StepIndex steps = program.num_supersteps();
    DBSP_REQUIRE(steps > 0);
    // The paper assumes every computation ends with a global synchronization.
    DBSP_REQUIRE(program.label(steps - 1) == 0);

    DbspResult result;
    result.data_words = program.data_words();
    result.contexts = initial_contexts(program);

    VectorAccessorSource contexts(result.contexts, mu);
    DeliveryScratch scratch;
    if (trace_ != nullptr) trace_->reset_total();

    const std::size_t threads = threads_ == 0 ? util::default_threads() : threads_;
    struct BlockMax {
        std::uint64_t tau = 0;
        std::size_t sent = 0;
    };
    std::vector<BlockMax> block_max;

    for (StepIndex s = 0; s < steps; ++s) {
        const unsigned label = program.label(s);
        DBSP_REQUIRE(label <= tree.log_processors());

        SuperstepStats stats;
        stats.label = label;

        std::size_t max_sent = 0;
        if (threads > 1 && v > 1) {
            // Independent processors: run blocks concurrently with per-block
            // partial maxima (integer, so the reduction order is free) and a
            // per-block accessor; contexts are disjoint per processor.
            const std::size_t nblocks = (v + kDeliveryShardProcs - 1) / kDeliveryShardProcs;
            block_max.assign(nblocks, BlockMax{});
            util::parallel_for_blocked(
                v, kDeliveryShardProcs,
                [&](std::size_t begin, std::size_t end) {
                    VectorAccessorSource local(result.contexts, mu);
                    BlockMax bm;
                    for (ProcId p = begin; p < end; ++p) {
                        const StepOutcome out =
                            run_processor_step(program, layout, tree, s, p, local.at(p));
                        bm.tau = std::max(bm.tau, out.ops);
                        bm.sent = std::max(bm.sent, out.sent);
                    }
                    block_max[begin / kDeliveryShardProcs] = bm;
                },
                threads);
            for (const BlockMax& bm : block_max) {
                stats.tau = std::max(stats.tau, bm.tau);
                max_sent = std::max(max_sent, bm.sent);
            }
        } else {
            for (ProcId p = 0; p < v; ++p) {
                const StepOutcome out =
                    run_processor_step(program, layout, tree, s, p, contexts.at(p));
                stats.tau = std::max(stats.tau, out.ops);
                max_sent = std::max(max_sent, out.sent);
            }
        }

        // Barrier + message exchange: messages become visible at the start of
        // superstep s+1. The sharded and serial protocols yield identical
        // inboxes and counts; the direct machine charges nothing per word,
        // so either path may serve any thread count.
        const std::size_t max_received =
            threads > 1
                ? deliver_messages_sharded(layout, 0, v, contexts, program.proc_id_base(),
                                           scratch, threads)
                : deliver_messages(layout, 0, v, contexts, program.proc_id_base(), &scratch);

        stats.h = std::max(max_sent, max_received);
        stats.comm_arg = static_cast<double>(mu) * static_cast<double>(tree.cluster_size(label));
        stats.cost = static_cast<double>(std::max<std::uint64_t>(stats.tau, 1)) +
                     static_cast<double>(stats.h) * g_.at(stats.comm_arg);
        result.time += stats.cost;
        if (trace_ != nullptr) {
            trace_->messages(scratch.pending.size());
            trace_->superstep(label, stats.tau, stats.h, stats.comm_arg, stats.cost);
        }
        result.supersteps.push_back(stats);
    }
    return result;
}

}  // namespace dbsp::model
