#pragma once

/// \file dbsp_machine.hpp
/// Direct executor and cost model for D-BSP(v, mu, g(x)) programs (Section 2).
/// Runs a program superstep-by-superstep on flat per-processor contexts,
/// validates the communication discipline, and computes the exact model cost
///
///     T = sum_s ( tau_s + h_s * g(mu * v / 2^{i_s}) )
///
/// where tau_s is the maximum per-processor local work in superstep s and h_s
/// the degree of the superstep's h-relation (max messages sent or received by
/// any processor). The functional result (final contexts) is the reference
/// against which every simulator is tested.

#include <vector>

#include "model/access_function.hpp"
#include "model/cluster_tree.hpp"
#include "model/program.hpp"
#include "model/types.hpp"
#include "trace/sink.hpp"

namespace dbsp::model {

/// Per-superstep execution record.
struct SuperstepStats {
    unsigned label = 0;          ///< i_s
    std::uint64_t tau = 0;       ///< max local ops over processors
    std::size_t h = 0;           ///< h-relation degree
    double comm_arg = 0.0;       ///< mu * v / 2^{i_s}, the g() argument
    double cost = 0.0;           ///< tau + h * g(comm_arg), with tau >= 1
};

/// Result of executing a program to completion.
struct DbspResult {
    double time = 0.0;                        ///< total D-BSP time
    std::vector<SuperstepStats> supersteps;   ///< one record per superstep
    std::vector<std::vector<Word>> contexts;  ///< final mu-word contexts
    std::size_t data_words = 0;               ///< D, for extracting user data

    /// User data words of processor p (excludes message-buffer words, whose
    /// final contents are also identical across executors but are not part of
    /// the program's observable output).
    std::vector<Word> data_of(ProcId p) const;

    /// Total communication component sum_s h_s * g(...).
    double communication_time() const;
    /// Total computation component sum_s tau_s.
    double computation_time() const;
};

/// The executor. Stateless apart from the bandwidth function; run() may be
/// called repeatedly and concurrently on distinct machines.
class DbspMachine {
public:
    explicit DbspMachine(AccessFunction g) : g_(std::move(g)) {}

    /// Execute \p program to completion.
    DbspResult run(Program& program) const;

    /// Worker threads for the per-processor step loop and the sharded
    /// message delivery: 1 (default) = serial, 0 = util::default_threads()
    /// (DBSP_THREADS env), N = exactly N. The superstep cost reductions are
    /// integer maxima and delivery is functionally canonical, so the result
    /// — time, per-superstep stats, contexts — is identical at every thread
    /// count (bit for bit, not merely up to rounding).
    void set_threads(std::size_t threads) { threads_ = threads; }

    /// Build the initial mu-word contexts for \p program (zeroed buffers,
    /// init()-filled data words). Shared with the simulators so every executor
    /// starts from the identical memory image.
    static std::vector<std::vector<Word>> initial_contexts(const Program& program);

    const AccessFunction& bandwidth() const { return g_; }

    /// Attach (or detach, with nullptr) a charge-trace sink: run() then emits
    /// one superstep event per executed superstep — charged exactly
    /// max(tau, 1) + h * g(comm_arg), the same double added to result.time —
    /// and one messages event per delivery, and resets the sink's running
    /// total on entry so total() mirrors that run's time bit for bit. The
    /// sink is not owned and must outlive run().
    void set_trace(trace::Sink* sink) { trace_ = sink; }
    trace::Sink* trace() const { return trace_; }

private:
    AccessFunction g_;
    trace::Sink* trace_ = nullptr;  ///< not owned; nullptr = tracing off
    std::size_t threads_ = 1;       ///< see set_threads
};

}  // namespace dbsp::model
