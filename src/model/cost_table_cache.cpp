#include "model/cost_table_cache.hpp"

#include "report/metrics.hpp"

namespace dbsp::model {

namespace {

// The registry mirror of stats_: survives stats-struct resets and feeds the
// "metrics" section of JSON artifacts. Updated while mutex_ is already held,
// so the relaxed adds cost nothing measurable.
report::Counter& builds_metric() {
    static auto& c = report::metric_counter("cost_table.builds");
    return c;
}
report::Counter& hits_metric() {
    static auto& c = report::metric_counter("cost_table.hits");
    return c;
}
report::Counter& slices_metric() {
    static auto& c = report::metric_counter("cost_table.slices");
    return c;
}

}  // namespace

CostTableCache& CostTableCache::global() {
    static CostTableCache cache;
    return cache;
}

std::shared_ptr<const CostTable> CostTableCache::get(const AccessFunction& f,
                                                     std::uint64_t capacity) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!enabled_) {
            ++stats_.builds;
            builds_metric().add();
        } else {
            auto it = tables_.find(f.key());
            if (it != tables_.end() && it->second->capacity() >= capacity) {
                if (it->second->capacity() == capacity) {
                    ++stats_.hits;
                    hits_metric().add();
                    return it->second;
                }
                ++stats_.slices;
                slices_metric().add();
                return std::make_shared<CostTable>(*it->second, capacity);
            }
            ++stats_.builds;
            builds_metric().add();
        }
    }
    // Build outside the lock: prefix construction is O(capacity) and must not
    // serialize unrelated workers. A racing build of the same table wastes one
    // build but stays correct (last insert wins; both tables are identical).
    auto table = std::make_shared<const CostTable>(f, capacity);
    std::lock_guard<std::mutex> lock(mutex_);
    if (enabled_) {
        auto& slot = tables_[f.key()];
        if (!slot || slot->capacity() < capacity) slot = table;
    }
    return table;
}

CostTableCache::Stats CostTableCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void CostTableCache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    tables_.clear();
}

void CostTableCache::set_enabled(bool enabled) {
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_ = enabled;
    if (!enabled) tables_.clear();
}

bool CostTableCache::enabled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return enabled_;
}

}  // namespace dbsp::model
