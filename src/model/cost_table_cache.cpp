#include "model/cost_table_cache.hpp"

#include "report/metrics.hpp"

namespace dbsp::model {

namespace {

// The registry mirror of stats_: survives stats-struct resets and feeds the
// "metrics" section of JSON artifacts. Updated while mutex_ is already held,
// so the relaxed adds cost nothing measurable.
report::Counter& builds_metric() {
    static auto& c = report::metric_counter("cost_table.builds");
    return c;
}
report::Counter& hits_metric() {
    static auto& c = report::metric_counter("cost_table.hits");
    return c;
}
report::Counter& slices_metric() {
    static auto& c = report::metric_counter("cost_table.slices");
    return c;
}
report::Counter& evictions_metric() {
    static auto& c = report::metric_counter("cost_table.evictions");
    return c;
}

}  // namespace

CostTableCache& CostTableCache::global() {
    static CostTableCache cache;
    return cache;
}

std::shared_ptr<const CostTable> CostTableCache::get(const AccessFunction& f,
                                                     std::uint64_t capacity) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!enabled_) {
            ++stats_.builds;
            builds_metric().add();
        } else {
            auto it = tables_.find(f.key());
            if (it != tables_.end() && it->second.table->capacity() >= capacity) {
                touch(it);
                if (it->second.table->capacity() == capacity) {
                    ++stats_.hits;
                    hits_metric().add();
                    return it->second.table;
                }
                ++stats_.slices;
                slices_metric().add();
                return std::make_shared<CostTable>(*it->second.table, capacity);
            }
            ++stats_.builds;
            builds_metric().add();
        }
    }
    // Build outside the lock: prefix construction is O(capacity) and must not
    // serialize unrelated workers. A racing build of the same table wastes one
    // build but stays correct (last insert wins; both tables are identical).
    auto table = std::make_shared<const CostTable>(f, capacity);
    std::lock_guard<std::mutex> lock(mutex_);
    if (enabled_) {
        auto [it, inserted] = tables_.try_emplace(f.key());
        if (inserted) {
            it->second.lru_pos = lru_.insert(lru_.begin(), it->first);
        } else {
            touch(it);
        }
        Entry& entry = it->second;
        if (!entry.table || entry.table->capacity() < capacity) entry.table = table;
        enforce_cap();
    }
    return table;
}

CostTableCache::Stats CostTableCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void CostTableCache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    tables_.clear();
    lru_.clear();
}

void CostTableCache::set_enabled(bool enabled) {
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_ = enabled;
    if (!enabled) {
        tables_.clear();
        lru_.clear();
    }
}

bool CostTableCache::enabled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return enabled_;
}

void CostTableCache::set_max_entries(std::size_t max_entries) {
    if (max_entries == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    max_entries_ = max_entries;
    enforce_cap();
}

std::size_t CostTableCache::max_entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_entries_;
}

std::size_t CostTableCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return tables_.size();
}

void CostTableCache::touch(std::unordered_map<std::string, Entry>::iterator it) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
}

void CostTableCache::enforce_cap() {
    while (tables_.size() > max_entries_) {
        tables_.erase(lru_.back());
        lru_.pop_back();
        ++stats_.evictions;
        evictions_metric().add();
    }
}

}  // namespace dbsp::model
