#pragma once

/// \file recorded_program.hpp
/// Trace capture and replay for D-BSP computations.
///
/// The paper's simulation theorems quantify over *computations*, not source
/// programs: any sequence of labeled supersteps with per-processor local
/// work and messages can be simulated. `record()` runs a program once on the
/// direct machine while capturing, per (superstep, processor), the local op
/// count and the emitted messages; the resulting `RecordedProgram` replays
/// that exact computation — same labels, same work, same traffic — without
/// the original program's logic.
///
/// Uses:
///  * simulate workloads whose source is unavailable (e.g. captured from an
///    external tool and loaded as a trace);
///  * build synthetic workloads directly by constructing a Trace;
///  * regression-freeze a program's communication pattern.
///
/// A replay is faithful for cost purposes (labels, tau, h are identical) and
/// functionally self-consistent (the replayed messages are re-delivered), but
/// the data words it produces are the recorded payloads, not recomputed
/// values — replaying is about the *computation's shape*.

#include <algorithm>
#include <vector>

#include "model/program.hpp"

namespace dbsp::model {

/// A captured D-BSP computation.
struct Trace {
    struct Event {
        std::uint64_t ops = 0;            ///< local work of this processor
        std::vector<Message> messages;    ///< sends (dest + payload; src implicit)
        bool read_inbox = false;          ///< whether the step consumed its inbox
    };

    std::uint64_t processors = 0;
    std::size_t max_messages = 0;              ///< buffer bound B observed
    std::size_t data_words = 2;                ///< context D to replay with (>= 2)
    std::vector<unsigned> labels;              ///< per superstep
    std::vector<std::vector<Event>> events;    ///< [superstep][processor]

    /// Aggregate statistics (for reports and tests).
    std::uint64_t total_messages() const;
    std::uint64_t total_ops() const;
};

/// Run \p program to completion on flat contexts, capturing its trace.
/// The program is executed once (its init() and step() are invoked normally).
Trace record(Program& program);

/// Replays a Trace as a Program. Data words: word 0 holds the number of
/// messages received so far, word 1 an order-sensitive digest of their
/// payloads — enough to make functional equivalence across executors a
/// meaningful check without carrying the original program's state. The
/// replay context carries trace.data_words user words (minimum 2, for the
/// count and digest; words beyond 2 stay untouched) so the recorded
/// program's mu — and with it every charged cost — matches the original's
/// context geometry.
class RecordedProgram final : public Program {
public:
    explicit RecordedProgram(Trace trace);

    std::string name() const override { return "recorded-trace"; }
    std::uint64_t num_processors() const override { return trace_.processors; }
    std::size_t data_words() const override { return std::max<std::size_t>(trace_.data_words, 2); }
    std::size_t max_messages() const override { return trace_.max_messages; }
    StepIndex num_supersteps() const override { return trace_.labels.size(); }
    unsigned label(StepIndex s) const override { return trace_.labels[s]; }
    void step(StepIndex s, ProcId p, StepContext& ctx) override;

    const Trace& trace() const { return trace_; }

private:
    Trace trace_;
};

}  // namespace dbsp::model
