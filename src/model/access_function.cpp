#include "model/access_function.hpp"

#include <bit>
#include <cmath>
#include <cstdio>

#include "util/contracts.hpp"

namespace dbsp::model {

namespace {

/// Fixed probe addresses for fingerprinting kCustom functions: a spread of
/// shallow and deep addresses so that any two functions that differ anywhere
/// an experiment can reach them almost surely differ on a probe.
constexpr double kProbes[] = {0.0, 1.0, 7.0, 64.0, 4097.0, 1048576.0, 1e9};

}  // namespace

AccessFunction::AccessFunction(std::string name, Kind kind, double param,
                               std::function<double(double)> charged,
                               std::function<double(double)> pure)
    : name_(std::move(name)), kind_(kind), param_(param), charged_(std::move(charged)),
      pure_(std::move(pure)) {
    DBSP_REQUIRE(charged_ != nullptr);
    DBSP_REQUIRE(pure_ != nullptr);
}

AccessFunction AccessFunction::polynomial(double alpha) {
    DBSP_REQUIRE(alpha > 0.0 && alpha < 1.0);
    char name[32];
    std::snprintf(name, sizeof name, "x^%.2f", alpha);
    return AccessFunction(
        name, Kind::kPolynomial, alpha,
        [alpha](double x) { return std::pow(x + 1.0, alpha); },
        [alpha](double x) { return x > 0.0 ? std::pow(x, alpha) : 0.0; });
}

AccessFunction AccessFunction::logarithmic() {
    return AccessFunction(
        "log x", Kind::kLogarithmic, 0.0, [](double x) { return std::log2(x + 2.0); },
        [](double x) { return x > 1.0 ? std::log2(x) : 0.0; });
}

AccessFunction AccessFunction::constant(double c) {
    DBSP_REQUIRE(c > 0.0);
    return AccessFunction(
        "const", Kind::kConstant, c, [c](double) { return c; },
        [](double) { return 0.0; });
}

AccessFunction AccessFunction::linear(double scale) {
    DBSP_REQUIRE(scale > 0.0);
    return AccessFunction(
        "linear", Kind::kLinear, scale, [scale](double x) { return scale * (x + 1.0); },
        [scale](double x) { return scale * x; });
}

AccessFunction AccessFunction::custom(std::string name,
                                      std::function<double(double)> charged,
                                      std::function<double(double)> pure) {
    return AccessFunction(std::move(name), Kind::kCustom, 0.0, std::move(charged),
                          std::move(pure));
}

bool AccessFunction::same_function(const AccessFunction& other) const {
    if (kind_ != other.kind_ || name_ != other.name_) return false;
    if (kind_ != Kind::kCustom) {
        return std::bit_cast<std::uint64_t>(param_) ==
               std::bit_cast<std::uint64_t>(other.param_);
    }
    for (double x : kProbes) {
        if (std::bit_cast<std::uint64_t>(charged_(x)) !=
            std::bit_cast<std::uint64_t>(other.charged_(x))) {
            return false;
        }
    }
    return true;
}

std::string AccessFunction::key() const {
    std::string k = name_;
    k += '#';
    k += std::to_string(static_cast<int>(kind_));
    if (kind_ != Kind::kCustom) {
        k += '#';
        k += std::to_string(std::bit_cast<std::uint64_t>(param_));
        return k;
    }
    for (double x : kProbes) {
        k += '#';
        k += std::to_string(std::bit_cast<std::uint64_t>(charged_(x)));
    }
    return k;
}

double AccessFunction::iterate(double x, unsigned k) const {
    double v = x;
    for (unsigned i = 0; i < k; ++i) v = pure_(v);
    return v;
}

unsigned AccessFunction::star(double x, unsigned cap) const {
    double v = x;
    for (unsigned k = 1; k <= cap; ++k) {
        v = pure_(v);
        if (v <= 2.0) return k;
    }
    return cap;
}

double AccessFunction::uniformity_constant(std::uint64_t limit) const {
    double worst = 1.0;
    for (std::uint64_t x = 1; 2 * x <= limit; x *= 2) {
        const double fx = (*this)(x);
        DBSP_ASSERT(fx > 0.0);
        worst = std::max(worst, (*this)(2 * x) / fx);
    }
    return worst;
}

bool AccessFunction::is_nondecreasing(std::uint64_t limit) const {
    double prev = (*this)(0);
    for (std::uint64_t x = 1; x <= limit; x = x < 64 ? x + 1 : x + x / 7) {
        const double cur = (*this)(x);
        if (cur + 1e-12 < prev) return false;
        prev = cur;
    }
    return true;
}

}  // namespace dbsp::model
