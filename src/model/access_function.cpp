#include "model/access_function.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace dbsp::model {

AccessFunction::AccessFunction(std::string name, std::function<double(double)> charged,
                               std::function<double(double)> pure)
    : name_(std::move(name)), charged_(std::move(charged)), pure_(std::move(pure)) {
    DBSP_REQUIRE(charged_ != nullptr);
    DBSP_REQUIRE(pure_ != nullptr);
}

AccessFunction AccessFunction::polynomial(double alpha) {
    DBSP_REQUIRE(alpha > 0.0 && alpha < 1.0);
    char name[32];
    std::snprintf(name, sizeof name, "x^%.2f", alpha);
    return AccessFunction(
        name, [alpha](double x) { return std::pow(x + 1.0, alpha); },
        [alpha](double x) { return x > 0.0 ? std::pow(x, alpha) : 0.0; });
}

AccessFunction AccessFunction::logarithmic() {
    return AccessFunction(
        "log x", [](double x) { return std::log2(x + 2.0); },
        [](double x) { return x > 1.0 ? std::log2(x) : 0.0; });
}

AccessFunction AccessFunction::constant(double c) {
    DBSP_REQUIRE(c > 0.0);
    return AccessFunction(
        "const", [c](double) { return c; }, [](double) { return 0.0; });
}

AccessFunction AccessFunction::linear(double scale) {
    DBSP_REQUIRE(scale > 0.0);
    return AccessFunction(
        "linear", [scale](double x) { return scale * (x + 1.0); },
        [scale](double x) { return scale * x; });
}

AccessFunction AccessFunction::custom(std::string name,
                                      std::function<double(double)> charged,
                                      std::function<double(double)> pure) {
    return AccessFunction(std::move(name), std::move(charged), std::move(pure));
}

double AccessFunction::iterate(double x, unsigned k) const {
    double v = x;
    for (unsigned i = 0; i < k; ++i) v = pure_(v);
    return v;
}

unsigned AccessFunction::star(double x, unsigned cap) const {
    double v = x;
    for (unsigned k = 1; k <= cap; ++k) {
        v = pure_(v);
        if (v <= 2.0) return k;
    }
    return cap;
}

double AccessFunction::uniformity_constant(std::uint64_t limit) const {
    double worst = 1.0;
    for (std::uint64_t x = 1; 2 * x <= limit; x *= 2) {
        const double fx = (*this)(x);
        DBSP_ASSERT(fx > 0.0);
        worst = std::max(worst, (*this)(2 * x) / fx);
    }
    return worst;
}

bool AccessFunction::is_nondecreasing(std::uint64_t limit) const {
    double prev = (*this)(0);
    for (std::uint64_t x = 1; x <= limit; x = x < 64 ? x + 1 : x + x / 7) {
        const double cur = (*this)(x);
        if (cur + 1e-12 < prev) return false;
        prev = cur;
    }
    return true;
}

}  // namespace dbsp::model
