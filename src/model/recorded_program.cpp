#include "model/recorded_program.hpp"

#include <algorithm>

#include "model/dbsp_machine.hpp"
#include "model/superstep_exec.hpp"
#include "util/contracts.hpp"

namespace dbsp::model {

std::uint64_t Trace::total_messages() const {
    std::uint64_t n = 0;
    for (const auto& step : events) {
        for (const auto& ev : step) n += ev.messages.size();
    }
    return n;
}

std::uint64_t Trace::total_ops() const {
    std::uint64_t n = 0;
    for (const auto& step : events) {
        for (const auto& ev : step) n += ev.ops;
    }
    return n;
}

Trace record(Program& program) {
    const std::uint64_t v = program.num_processors();
    const ClusterTree tree(v);
    const ContextLayout layout = program.layout();
    const std::size_t mu = layout.context_words();
    const StepIndex steps = program.num_supersteps();
    DBSP_REQUIRE(steps > 0);

    Trace trace;
    trace.processors = v;
    trace.max_messages = program.max_messages();
    trace.data_words = std::max<std::size_t>(program.data_words(), 2);
    trace.events.resize(steps);

    auto contexts = DbspMachine::initial_contexts(program);
    VectorAccessorSource source(contexts, mu);
    DeliveryScratch scratch;

    for (StepIndex s = 0; s < steps; ++s) {
        trace.labels.push_back(program.label(s));
        trace.events[s].resize(v);
        for (ProcId p = 0; p < v; ++p) {
            FlatContextAccessor acc(contexts[p].data(), mu);
            StepContext ctx(acc, layout, tree, s, program.label(s), p,
                            program.proc_id_base());
            program.step(s, p, ctx);
            acc.set(layout.out_count_offset(), ctx.sent());
            Trace::Event& ev = trace.events[s][p];
            ev.ops = ctx.ops();
            ev.read_inbox = ctx.read_inbox();
            if (ev.read_inbox) acc.set(layout.in_count_offset(), 0);
            // Capture the emitted messages from the outgoing buffer.
            for (std::size_t k = 0; k < ctx.sent(); ++k) {
                const std::size_t off = layout.out_record_offset(k);
                Message m;
                m.src = p;
                m.dest = contexts[p][off];
                m.payload0 = contexts[p][off + 1];
                m.payload1 = contexts[p][off + 2];
                ev.messages.push_back(m);
            }
        }
        deliver_messages(layout, 0, v, source, program.proc_id_base(), &scratch);
    }
    return trace;
}

RecordedProgram::RecordedProgram(Trace trace) : trace_(std::move(trace)) {
    DBSP_REQUIRE(trace_.processors >= 1);
    DBSP_REQUIRE(!trace_.labels.empty());
    DBSP_REQUIRE(trace_.labels.back() == 0);
    DBSP_REQUIRE(trace_.events.size() == trace_.labels.size());
}

void RecordedProgram::step(StepIndex s, ProcId p, StepContext& ctx) {
    const Trace::Event& ev = trace_.events[s][p];
    if (ev.read_inbox) {
        // Fold the received payloads into an order-sensitive digest.
        const std::size_t n = ctx.inbox_size();
        Word count = ctx.load(0);
        Word digest = ctx.load(1);
        for (std::size_t k = 0; k < n; ++k) {
            const Message m = ctx.inbox(k);
            digest = digest * 1099511628211ull ^ m.payload0 ^ (m.payload1 << 1) ^ m.src;
            ++count;
        }
        ctx.store(0, count);
        ctx.store(1, digest);
    }
    ctx.charge_ops(ev.ops);
    for (const Message& m : ev.messages) {
        ctx.send(m.dest, m.payload0, m.payload1);
    }
}

}  // namespace dbsp::model
