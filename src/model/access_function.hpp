#pragma once

/// \file access_function.hpp
/// Memory access-cost functions f(x) for the HMM and BT models and bandwidth
/// functions g(x) for D-BSP, per Section 2 of the paper.
///
/// The paper restricts attention to nondecreasing (2,c)-uniform functions:
/// there is a constant c >= 1 with f(2x) <= c f(x) for all x. The two
/// case-study functions are the polynomial f(x) = x^alpha (0 < alpha < 1) and
/// the logarithmic f(x) = log x.
///
/// Implementation note: a cost function must be positive and defined at
/// address 0, so the *charged* forms are shifted — poly(alpha) charges
/// (x+1)^alpha and logarithmic() charges log2(x+2). The shift changes neither
/// monotonicity nor the (2,c)-uniformity class nor any asymptotic statement.
/// The un-shifted mathematical form is retained separately for computing the
/// iterated-function quantities f^(k)(x) and f*(x) of Fact 2, which are
/// defined in terms of the pure function.

#include <cstdint>
#include <functional>
#include <string>

namespace dbsp::model {

/// A nondecreasing memory access-cost function. Value-semantic; cheap to copy.
class AccessFunction {
public:
    /// Closed-form family tag. The cost-table builder specializes its prefix
    /// loop on this tag so the O(capacity) build runs on the raw expression
    /// instead of a std::function call per address; kCustom falls back to the
    /// type-erased path.
    enum class Kind { kPolynomial, kLogarithmic, kConstant, kLinear, kCustom };

    /// f(x) = (x+1)^alpha, the paper's polynomial case study; 0 < alpha < 1.
    static AccessFunction polynomial(double alpha);

    /// f(x) = log2(x+2), the paper's logarithmic case study.
    static AccessFunction logarithmic();

    /// f(x) = c for all x (flat memory / RAM baseline).
    static AccessFunction constant(double c = 1.0);

    /// f(x) = scale * (x+1); not (2,c)-uniform-friendly for large scale but
    /// useful in tests of the uniformity checker.
    static AccessFunction linear(double scale = 1.0);

    /// Arbitrary user-supplied function. \p charged is used for cost
    /// accounting (must be positive, nondecreasing, defined at 0); \p pure is
    /// used for iterated-function computations (may reach values <= 1).
    static AccessFunction custom(std::string name,
                                 std::function<double(double)> charged,
                                 std::function<double(double)> pure);

    /// Charged access cost of address \p x.
    double operator()(std::uint64_t x) const { return charged_(static_cast<double>(x)); }

    /// Charged cost evaluated on a real-valued argument (used by analytic
    /// bound calculators that plug in non-integer cluster sizes).
    double at(double x) const { return charged_(x); }

    /// Pure mathematical form, used for f^(k) and f*.
    double pure(double x) const { return pure_(x); }

    /// f^(k)(x): the pure function applied k times; k = 0 returns x.
    double iterate(double x, unsigned k) const;

    /// f*(x) = min{ k >= 1 : f^(k)(x) <= 2 }, per Fact 2. The threshold is 2
    /// rather than 1 because x^alpha has fixed point 1 and only *approaches*
    /// it from above; the standard convention (any constant > 1 gives the
    /// same Theta class) makes f*(n) = Theta(log log n) for x^alpha and
    /// Theta(log* n) for log x. Capped at \p cap to guarantee termination.
    unsigned star(double x, unsigned cap = 256) const;

    /// Empirical (2,c)-uniformity constant: max over x in {1,2,4,...,limit/2}
    /// of f(2x)/f(x) using the charged form. The paper's class requires this
    /// to be bounded; for poly it is 2^alpha, for log it tends to 1.
    double uniformity_constant(std::uint64_t limit) const;

    /// True iff the charged form is nondecreasing on sampled points <= limit.
    bool is_nondecreasing(std::uint64_t limit) const;

    const std::string& name() const { return name_; }

    /// Family tag and its numeric parameter (alpha for kPolynomial, c for
    /// kConstant, scale for kLinear; unused otherwise).
    Kind kind() const { return kind_; }
    double param() const { return param_; }

    /// The charged form without the operator() indirection layer; used by the
    /// cost-table builder for kCustom functions.
    const std::function<double(double)>& charged_fn() const { return charged_; }

    /// True iff \p other is observably the same cost function: same family
    /// tag and parameter for closed-form kinds; same name and bit-identical
    /// charged values on a fixed probe set for kCustom. Used by the cost-table
    /// cache to key shared prefix arrays safely.
    bool same_function(const AccessFunction& other) const;

    /// Stable identity string (name + family/probe fingerprint) suitable as a
    /// cache key; two functions with equal key() satisfy same_function().
    std::string key() const;

private:
    AccessFunction(std::string name, Kind kind, double param,
                   std::function<double(double)> charged,
                   std::function<double(double)> pure);

    std::string name_;
    Kind kind_;
    double param_;
    std::function<double(double)> charged_;
    std::function<double(double)> pure_;
};

}  // namespace dbsp::model
