#pragma once

/// \file cost_table.hpp
/// Cached prefix sums of an access function. The machine simulators charge
/// bulk operations (scans, block swaps) the *exact* per-cell sum
/// sum_{x=a}^{b-1} f(x); this table makes each such charge O(1) after an O(n)
/// one-time build, keeping the cost accounting both exact and fast.

#include <cstdint>
#include <vector>

#include "model/access_function.hpp"

namespace dbsp::model {

class CostTable {
public:
    /// Build prefix sums of \p f over addresses [0, capacity).
    CostTable(AccessFunction f, std::uint64_t capacity);

    /// Access cost of a single address; requires x < capacity().
    double cost(std::uint64_t x) const;

    /// Exact sum of f over the address range [begin, end); requires
    /// begin <= end <= capacity().
    double range_cost(std::uint64_t begin, std::uint64_t end) const;

    /// Fact 1 quantity: time to access the first n cells = range_cost(0, n),
    /// which the paper shows is Theta(n f(n)) for (2,c)-uniform f.
    double scan_cost(std::uint64_t n) const { return range_cost(0, n); }

    std::uint64_t capacity() const { return capacity_; }
    const AccessFunction& function() const { return f_; }

private:
    AccessFunction f_;
    std::uint64_t capacity_;
    std::vector<double> prefix_;  ///< prefix_[i] = sum of f over [0, i)
};

}  // namespace dbsp::model
