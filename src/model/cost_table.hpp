#pragma once

/// \file cost_table.hpp
/// Cached prefix sums of an access function. The machine simulators charge
/// bulk operations (scans, block swaps) the *exact* per-cell sum
/// sum_{x=a}^{b-1} f(x); this table makes each such charge O(1) after an O(n)
/// one-time build, keeping the cost accounting both exact and fast.
///
/// The prefix array is held behind a shared_ptr so that a table built once
/// for a large capacity can be sliced into views for smaller capacities
/// without rebuilding (see CostTableCache): the prefix loop is a running sum,
/// so the first n+1 entries of a larger table are bit-identical to a fresh
/// build at capacity n.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "model/access_function.hpp"
#include "util/contracts.hpp"

namespace dbsp::model {

class CostTable {
public:
    /// Build prefix sums of \p f over addresses [0, capacity).
    CostTable(AccessFunction f, std::uint64_t capacity);

    /// View of \p parent restricted to the first \p capacity addresses; shares
    /// the parent's prefix storage (no rebuild, identical values).
    CostTable(const CostTable& parent, std::uint64_t capacity);

    /// Access cost of a single address; requires x < capacity().
    double cost(std::uint64_t x) const {
        DBSP_REQUIRE(x < capacity_);
        return prefix_[x + 1] - prefix_[x];
    }

    /// Exact sum of f over the address range [begin, end); requires
    /// begin <= end <= capacity().
    double range_cost(std::uint64_t begin, std::uint64_t end) const {
        DBSP_REQUIRE(begin <= end);
        DBSP_REQUIRE(end <= capacity_);
        return prefix_[end] - prefix_[begin];
    }

    /// Fold the per-cell costs of [begin, end) into \p acc one cell at a time,
    /// in ascending address order. This reproduces bit for bit the floating-
    /// point sum a caller would get from `for (x) acc += cost(x)`, which is
    /// what keeps the bulk accessor fast path's charged totals identical to
    /// the per-word path (range_cost() is a single subtraction and rounds
    /// differently).
    double accumulate(std::uint64_t begin, std::uint64_t end, double acc) const {
        DBSP_REQUIRE(begin <= end);
        DBSP_REQUIRE(end <= capacity_);
        for (std::uint64_t x = begin; x < end; ++x) {
            acc += prefix_[x + 1] - prefix_[x];
        }
        return acc;
    }

    /// Fact 1 quantity: time to access the first n cells = range_cost(0, n),
    /// which the paper shows is Theta(n f(n)) for (2,c)-uniform f.
    double scan_cost(std::uint64_t n) const { return range_cost(0, n); }

    std::uint64_t capacity() const { return capacity_; }
    const AccessFunction& function() const { return f_; }

    /// The prefix-sum array itself (capacity() + 1 entries); lets a trace
    /// sink replay accumulate()'s exact per-word fold without re-entering
    /// the table on every word.
    std::span<const double> prefix() const {
        return {prefix_, static_cast<std::size_t>(capacity_) + 1};
    }

private:
    AccessFunction f_;
    std::uint64_t capacity_;
    std::shared_ptr<const std::vector<double>> storage_;  ///< shared with slices
    const double* prefix_;  ///< storage_->data(); prefix_[i] = sum of f over [0, i)
};

}  // namespace dbsp::model
