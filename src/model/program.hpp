#pragma once

/// \file program.hpp
/// The D-BSP program abstraction (Section 2 of the paper). A program is a
/// sequence of labeled supersteps over v processors with mu-word contexts.
/// In an i-superstep every processor runs local computation on its context and
/// sends constant-size messages to processors inside its i-cluster; messages
/// become visible in the destination's inbox at the start of the next
/// superstep.
///
/// The step callback must be a pure function of (superstep, processor,
/// context contents, inbox): the HMM/BT simulators execute processors wildly
/// out of order (that is the whole point of the paper), so any hidden global
/// mutable state in a program would break functional equivalence.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/cluster_tree.hpp"
#include "model/context_layout.hpp"
#include "model/types.hpp"

namespace dbsp::model {

/// Execution-facing view of one processor during one superstep. Wraps the
/// context storage, enforces the message discipline, and counts local
/// operations so executors can compute tau_s = max per-processor work.
class StepContext {
public:
    /// \p proc is the processor's *local* index within \p tree; \p proc_base
    /// is added to it for everything the program observes (proc(), message
    /// sources and destinations). The base is nonzero only when a sub-machine
    /// window of a larger program is executed (Section 4 self-simulation).
    StepContext(ContextAccessor& ctx, const ContextLayout& layout, const ClusterTree& tree,
                StepIndex superstep, unsigned label, ProcId proc, ProcId proc_base = 0);

    /// --- user data ---------------------------------------------------------
    Word load(std::size_t i);
    void store(std::size_t i, Word value);

    /// Convenience for floating-point payloads.
    double load_double(std::size_t i);
    void store_double(std::size_t i, double value);

    /// --- messaging ---------------------------------------------------------
    /// Number of messages delivered at the start of this superstep.
    std::size_t inbox_size();
    /// k-th received message (src, payload0, payload1).
    Message inbox(std::size_t k);
    /// Send a message to \p dest, which must lie in this processor's
    /// label-cluster; at most max_messages sends per superstep.
    void send(ProcId dest, Word payload0, Word payload1 = 0);
    void send_double(ProcId dest, double payload0, double payload1 = 0.0);

    /// --- accounting --------------------------------------------------------
    /// Charge additional pure-compute work (loads/stores/sends already charge
    /// one op each).
    void charge_ops(std::uint64_t n) { ops_ += n; }
    std::uint64_t ops() const { return ops_; }
    std::size_t sent() const { return sent_; }

    /// True iff the step inspected its inbox. Executors consume (clear) the
    /// inbox after a step that read it; an unread inbox persists, so messages
    /// survive the dummy supersteps inserted by L-smoothing. This rule is
    /// applied identically by the direct machine and by every simulator.
    bool read_inbox() const { return read_inbox_; }

    /// Global processor id as the program sees it. Note: there is
    /// deliberately no processors() accessor — under the Section 4
    /// self-simulation a step may execute inside a sub-machine window whose
    /// tree is smaller than the program's v, so programs must use their own
    /// stored size.
    ProcId proc() const { return proc_base_ + proc_; }
    StepIndex superstep() const { return superstep_; }
    unsigned label() const { return label_; }

private:
    ContextAccessor& ctx_;
    const ContextLayout& layout_;
    const ClusterTree& tree_;
    StepIndex superstep_;
    unsigned label_;
    ProcId proc_;
    ProcId proc_base_;
    std::uint64_t ops_ = 0;
    std::size_t sent_ = 0;
    bool read_inbox_ = false;
};

/// Communication-pattern classes a program may declare for a superstep
/// (Section 6 of the paper): when the pattern is a known rational permutation
/// the BT simulator can deliver it with the transpose primitive instead of
/// sorting, which is what makes the recursive-FFT simulation optimal.
enum class PermutationClass {
    kGeneral,    ///< arbitrary h-relation; delivered by sorting
    kTranspose,  ///< each processor x of the cluster sends exactly one message
                 ///< to processor transpose(x) on the sqrt(|C|) grid
};

/// A D-BSP program: structure (v, mu via layout, superstep labels) plus the
/// per-processor step behaviour and initial context data.
class Program {
public:
    virtual ~Program() = default;

    virtual std::string name() const = 0;

    /// v: number of processors; must be a power of two.
    virtual std::uint64_t num_processors() const = 0;

    /// D: user data words per context (layout adds buffer words on top).
    virtual std::size_t data_words() const = 0;

    /// B: per-direction message-buffer capacity per superstep.
    virtual std::size_t max_messages() const = 0;

    virtual StepIndex num_supersteps() const = 0;

    /// Label i_s of superstep s, in [0, log v]. The last superstep must have
    /// label 0 (the paper assumes every computation ends with a global
    /// synchronization).
    virtual unsigned label(StepIndex s) const = 0;

    /// Populate processor \p p's initial data words (zero-filled on entry).
    virtual void init(ProcId p, std::span<Word> data) const { (void)p, (void)data; }

    /// Local computation of superstep \p s for processor \p p.
    virtual void step(StepIndex s, ProcId p, StepContext& ctx) = 0;

    /// Declared communication pattern of superstep \p s; kGeneral is always
    /// safe. A kTranspose declaration is a promise (checked by the BT
    /// simulator) that every processor sends exactly one message to its
    /// transposed grid position within its aligned permutation_grain()-block.
    virtual PermutationClass permutation_class(StepIndex s) const {
        (void)s;
        return PermutationClass::kGeneral;
    }

    /// For kTranspose supersteps: the size m of the aligned processor blocks
    /// each of which undergoes an independent sqrt(m) x sqrt(m) transpose.
    /// Must divide the superstep's cluster size and have even log2. This is
    /// what keeps the declaration valid when L-smoothing upgrades the
    /// superstep to a coarser cluster: the pattern stays a blocked transpose.
    virtual std::uint64_t permutation_grain(StepIndex s) const {
        (void)s;
        return 0;
    }

    /// Offset added to local processor indices to form the ids the program's
    /// step functions observe; nonzero only for sub-machine window adapters.
    virtual ProcId proc_id_base() const { return 0; }

    /// True iff superstep \p s is a dummy inserted by a transformation
    /// (L-smoothing) rather than part of the original computation. Executors
    /// use this only for charge-trace attribution (Phase::kDummyStep), never
    /// for behaviour.
    virtual bool is_dummy_step(StepIndex s) const {
        (void)s;
        return false;
    }

    /// Derived layout for this program's contexts.
    ContextLayout layout() const { return ContextLayout{data_words(), max_messages()}; }

    /// mu: full context size in words.
    std::size_t context_words() const { return layout().context_words(); }
};

/// A program plus a relabeling of its supersteps; used by the L-smoothing
/// transformation, which upgrades labels and inserts dummy supersteps without
/// touching the underlying program behaviour.
class RelabeledProgram final : public Program {
public:
    /// \p step_map[s'] = index of the underlying superstep executed at
    /// position s', or kDummy for an inserted dummy superstep.
    /// \p labels[s'] = (possibly upgraded) label of position s'.
    static constexpr StepIndex kDummy = static_cast<StepIndex>(-1);

    RelabeledProgram(Program& base, std::vector<StepIndex> step_map,
                     std::vector<unsigned> labels);

    std::string name() const override { return base_.name() + "/smoothed"; }
    std::uint64_t num_processors() const override { return base_.num_processors(); }
    std::size_t data_words() const override { return base_.data_words(); }
    std::size_t max_messages() const override { return base_.max_messages(); }
    StepIndex num_supersteps() const override { return labels_.size(); }
    unsigned label(StepIndex s) const override { return labels_[s]; }
    void init(ProcId p, std::span<Word> data) const override { base_.init(p, data); }
    void step(StepIndex s, ProcId p, StepContext& ctx) override;
    PermutationClass permutation_class(StepIndex s) const override {
        return step_map_[s] == kDummy ? PermutationClass::kGeneral
                                      : base_.permutation_class(step_map_[s]);
    }
    std::uint64_t permutation_grain(StepIndex s) const override {
        return step_map_[s] == kDummy ? 0 : base_.permutation_grain(step_map_[s]);
    }
    ProcId proc_id_base() const override { return base_.proc_id_base(); }
    bool is_dummy_step(StepIndex s) const override {
        return step_map_[s] == kDummy || base_.is_dummy_step(step_map_[s]);
    }

    /// True iff position s is an inserted dummy superstep.
    bool is_dummy(StepIndex s) const { return step_map_[s] == kDummy; }
    Program& base() { return base_; }

private:
    Program& base_;
    std::vector<StepIndex> step_map_;
    std::vector<unsigned> labels_;
};

}  // namespace dbsp::model
