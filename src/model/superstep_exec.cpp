#include "model/superstep_exec.hpp"

#include <unordered_map>
#include <vector>

#include "util/contracts.hpp"

namespace dbsp::model {

std::size_t deliver_messages(const ContextLayout& layout, ProcId first, std::uint64_t count,
                             const AccessorFn& with_accessor, ProcId id_base) {
    // Phase 1: collect messages from the senders' outgoing buffers, in
    // ascending sender order, and reset the outgoing counts. The intermediate
    // vector is executor bookkeeping only; every word it carries has been
    // charged on read and will be charged again on write, exactly as if the
    // message moved directly between buffers.
    std::vector<Message> pending;
    for (ProcId p = first; p < first + count; ++p) {
        with_accessor(p, [&](ContextAccessor& acc) {
            const auto sent = static_cast<std::size_t>(acc.get(layout.out_count_offset()));
            DBSP_ASSERT(sent <= layout.max_messages);
            for (std::size_t k = 0; k < sent; ++k) {
                const std::size_t off = layout.out_record_offset(k);
                Message m;
                m.src = id_base + p;  // inboxes carry global source ids
                m.dest = acc.get(off);
                m.payload0 = acc.get(off + 1);
                m.payload1 = acc.get(off + 2);
                DBSP_ASSERT(m.dest >= first && m.dest < first + count);
                pending.push_back(m);
            }
            if (sent > 0) {
                acc.set(layout.out_count_offset(), 0);
            }
        });
    }

    // Phase 2: append to destination inboxes. `pending` is already sorted by
    // (src, send order); appending in this order gives the canonical inbox
    // ordering that the sort-based BT delivery reproduces with tag keys.
    std::size_t max_received = 0;
    std::unordered_map<ProcId, std::size_t> delivered;
    for (const Message& m : pending) {
        with_accessor(m.dest, [&](ContextAccessor& acc) {
            auto in_count = static_cast<std::size_t>(acc.get(layout.in_count_offset()));
            DBSP_REQUIRE(in_count < layout.max_messages);
            const std::size_t off = layout.in_record_offset(in_count);
            acc.set(off, m.src);
            acc.set(off + 1, m.payload0);
            acc.set(off + 2, m.payload1);
            acc.set(layout.in_count_offset(), in_count + 1);
        });
        max_received = std::max(max_received, ++delivered[m.dest]);
    }
    return max_received;
}

}  // namespace dbsp::model
