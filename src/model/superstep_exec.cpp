#include "model/superstep_exec.hpp"

#include <algorithm>
#include <atomic>

#include "report/metrics.hpp"
#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace dbsp::model {

namespace {

std::atomic<bool> g_bulk_access{true};

}  // namespace

bool bulk_access_enabled() { return g_bulk_access.load(std::memory_order_relaxed); }

void set_bulk_access_enabled(bool enabled) {
    g_bulk_access.store(enabled, std::memory_order_relaxed);
}

std::size_t deliver_messages(const ContextLayout& layout, ProcId first, std::uint64_t count,
                             AccessorSource& contexts, ProcId id_base,
                             DeliveryScratch* scratch) {
    DeliveryScratch local;
    DeliveryScratch& sc = scratch ? *scratch : local;
    const bool bulk = bulk_access_enabled();

    // Phase 1: collect messages from the senders' outgoing buffers, in
    // ascending sender order, and reset the outgoing counts. The intermediate
    // vector is executor bookkeeping only; every word it carries has been
    // charged on read and will be charged again on write, exactly as if the
    // message moved directly between buffers.
    std::vector<Message>& pending = sc.pending;
    pending.clear();
    for (ProcId p = first; p < first + count; ++p) {
        ContextAccessor& acc = contexts.at(p);
        const auto sent = static_cast<std::size_t>(acc.get(layout.out_count_offset()));
        DBSP_ASSERT(sent <= layout.max_messages);
        if (bulk) {
            // One range read covers the whole outgoing record block: the
            // records are contiguous, and the fused per-cell charge loop
            // walks the same ascending addresses as the per-word path.
            sc.words.resize(ContextLayout::kRecordWords * sent);
            acc.get_range(layout.out_record_offset(0), sc.words);
            for (std::size_t k = 0; k < sent; ++k) {
                const Word* rec = sc.words.data() + ContextLayout::kRecordWords * k;
                Message m;
                m.src = id_base + p;  // inboxes carry global source ids
                m.dest = rec[0];
                m.payload0 = rec[1];
                m.payload1 = rec[2];
                DBSP_ASSERT(m.dest >= first && m.dest < first + count);
                pending.push_back(m);
            }
        } else {
            for (std::size_t k = 0; k < sent; ++k) {
                const std::size_t off = layout.out_record_offset(k);
                Message m;
                m.src = id_base + p;
                m.dest = acc.get(off);
                m.payload0 = acc.get(off + 1);
                m.payload1 = acc.get(off + 2);
                DBSP_ASSERT(m.dest >= first && m.dest < first + count);
                pending.push_back(m);
            }
        }
        if (sent > 0) {
            acc.set(layout.out_count_offset(), 0);
        }
    }

    // Batch-granularity telemetry: one update per delivery call, independent
    // of how many messages moved.
    static auto& metric_delivered = report::metric_counter("model.messages_delivered");
    static auto& metric_batch = report::metric_histogram("model.delivery_batch");
    metric_delivered.add(pending.size());
    metric_batch.observe(pending.size());

    // Phase 2: append to destination inboxes. `pending` is already sorted by
    // (src, send order); appending in this order gives the canonical inbox
    // ordering that the sort-based BT delivery reproduces with tag keys.
    std::size_t max_received = 0;
    sc.received.assign(count, 0);
    for (const Message& m : pending) {
        ContextAccessor& acc = contexts.at(m.dest);
        auto in_count = static_cast<std::size_t>(acc.get(layout.in_count_offset()));
        DBSP_REQUIRE(in_count < layout.max_messages);
        const std::size_t off = layout.in_record_offset(in_count);
        if (bulk) {
            const Word rec[ContextLayout::kRecordWords] = {m.src, m.payload0, m.payload1};
            acc.set_range(off, rec);
        } else {
            acc.set(off, m.src);
            acc.set(off + 1, m.payload0);
            acc.set(off + 2, m.payload1);
        }
        acc.set(layout.in_count_offset(), in_count + 1);
        max_received = std::max(max_received, ++sc.received[m.dest - first]);
    }
    return max_received;
}

std::size_t deliver_messages_sharded(const ContextLayout& layout, ProcId first,
                                     std::uint64_t count, AccessorSource& contexts,
                                     ProcId id_base, DeliveryScratch& sc,
                                     std::size_t threads) {
    if (count == 0) return 0;
    const std::uint64_t nshards = (count + kDeliveryShardProcs - 1) / kDeliveryShardProcs;

    // (Re)build the shard sources when the scratch meets a new parent.
    if (sc.shard_owner != &contexts) {
        sc.shards.clear();
        sc.shard_owner = &contexts;
    }
    while (sc.shards.size() < nshards) {
        DeliveryShard shard;
        shard.source = contexts.make_shard();
        if (shard.source == nullptr) {
            sc.shards.clear();
            sc.shard_owner = nullptr;
            return deliver_messages(layout, first, count, contexts, id_base, &sc);
        }
        sc.shards.push_back(std::move(shard));
    }

    const bool bulk = bulk_access_enabled();

    // Phase 1: each sender shard collects its outgoing messages through its
    // private source — the per-sender body is the serial protocol's,
    // walking senders in ascending order within the shard.
    auto collect = [&](std::size_t sh) {
        DeliveryShard& shard = sc.shards[sh];
        shard.pending.clear();
        const ProcId lo = first + sh * kDeliveryShardProcs;
        const ProcId hi = std::min<ProcId>(first + count, lo + kDeliveryShardProcs);
        for (ProcId p = lo; p < hi; ++p) {
            ContextAccessor& acc = shard.source->at(p);
            const auto sent = static_cast<std::size_t>(acc.get(layout.out_count_offset()));
            DBSP_ASSERT(sent <= layout.max_messages);
            if (bulk) {
                shard.words.resize(ContextLayout::kRecordWords * sent);
                acc.get_range(layout.out_record_offset(0), shard.words);
                for (std::size_t k = 0; k < sent; ++k) {
                    const Word* rec = shard.words.data() + ContextLayout::kRecordWords * k;
                    Message m;
                    m.src = id_base + p;
                    m.dest = rec[0];
                    m.payload0 = rec[1];
                    m.payload1 = rec[2];
                    DBSP_ASSERT(m.dest >= first && m.dest < first + count);
                    shard.pending.push_back(m);
                }
            } else {
                for (std::size_t k = 0; k < sent; ++k) {
                    const std::size_t off = layout.out_record_offset(k);
                    Message m;
                    m.src = id_base + p;
                    m.dest = acc.get(off);
                    m.payload0 = acc.get(off + 1);
                    m.payload1 = acc.get(off + 2);
                    DBSP_ASSERT(m.dest >= first && m.dest < first + count);
                    shard.pending.push_back(m);
                }
            }
            if (sent > 0) {
                acc.set(layout.out_count_offset(), 0);
            }
        }
    };
    util::parallel_for(nshards, collect, threads);

    // Merge in ascending shard order: charges fold back into the parent, and
    // concatenating the shard queues reproduces the serial protocol's
    // canonical (src, send-order) pending sequence exactly.
    sc.pending.clear();
    for (std::uint64_t sh = 0; sh < nshards; ++sh) {
        contexts.merge_shard(*sc.shards[sh].source);
        sc.pending.insert(sc.pending.end(), sc.shards[sh].pending.begin(),
                          sc.shards[sh].pending.end());
    }

    static auto& metric_delivered = report::metric_counter("model.messages_delivered");
    static auto& metric_batch = report::metric_histogram("model.delivery_batch");
    metric_delivered.add(sc.pending.size());
    metric_batch.observe(sc.pending.size());

    // Phase 2: bucket the canonical sequence by destination shard (stable, so
    // every inbox still receives its messages in canonical order), append
    // through the disjoint shard sources, then merge in shard order again.
    for (std::uint64_t sh = 0; sh < nshards; ++sh) sc.shards[sh].pending.clear();
    for (const Message& m : sc.pending) {
        sc.shards[(m.dest - first) / kDeliveryShardProcs].pending.push_back(m);
    }
    sc.received.assign(count, 0);
    auto append = [&](std::size_t sh) {
        DeliveryShard& shard = sc.shards[sh];
        for (const Message& m : shard.pending) {
            ContextAccessor& acc = shard.source->at(m.dest);
            auto in_count = static_cast<std::size_t>(acc.get(layout.in_count_offset()));
            DBSP_REQUIRE(in_count < layout.max_messages);
            const std::size_t off = layout.in_record_offset(in_count);
            if (bulk) {
                const Word rec[ContextLayout::kRecordWords] = {m.src, m.payload0, m.payload1};
                acc.set_range(off, rec);
            } else {
                acc.set(off, m.src);
                acc.set(off + 1, m.payload0);
                acc.set(off + 2, m.payload1);
            }
            acc.set(layout.in_count_offset(), in_count + 1);
            ++sc.received[m.dest - first];
        }
    };
    util::parallel_for(nshards, append, threads);
    for (std::uint64_t sh = 0; sh < nshards; ++sh) {
        contexts.merge_shard(*sc.shards[sh].source);
    }

    std::size_t max_received = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        max_received = std::max(max_received, sc.received[i]);
    }
    return max_received;
}

}  // namespace dbsp::model
