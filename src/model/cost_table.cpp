#include "model/cost_table.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace dbsp::model {

namespace {

/// Run the prefix loop with \p charge(x) inlined per family so the O(capacity)
/// build does not pay a std::function call per address. Each specialization
/// evaluates the exact same expression as the family's charged lambda, so the
/// resulting prefix values are bit-identical to the type-erased path.
template <typename Charge>
void build_prefix(std::vector<double>& prefix, std::uint64_t capacity, Charge&& charge) {
    prefix[0] = 0.0;
    for (std::uint64_t x = 0; x < capacity; ++x) {
        prefix[x + 1] = prefix[x] + charge(static_cast<double>(x));
    }
}

}  // namespace

CostTable::CostTable(AccessFunction f, std::uint64_t capacity)
    : f_(std::move(f)), capacity_(capacity) {
    auto storage = std::make_shared<std::vector<double>>(capacity_ + 1);
    std::vector<double>& prefix = *storage;
    switch (f_.kind()) {
        case AccessFunction::Kind::kPolynomial: {
            const double alpha = f_.param();
            build_prefix(prefix, capacity_,
                         [alpha](double x) { return std::pow(x + 1.0, alpha); });
            break;
        }
        case AccessFunction::Kind::kLogarithmic:
            build_prefix(prefix, capacity_, [](double x) { return std::log2(x + 2.0); });
            break;
        case AccessFunction::Kind::kConstant: {
            const double c = f_.param();
            build_prefix(prefix, capacity_, [c](double) { return c; });
            break;
        }
        case AccessFunction::Kind::kLinear: {
            const double scale = f_.param();
            build_prefix(prefix, capacity_,
                         [scale](double x) { return scale * (x + 1.0); });
            break;
        }
        case AccessFunction::Kind::kCustom: {
            const auto& fn = f_.charged_fn();
            build_prefix(prefix, capacity_, [&fn](double x) { return fn(x); });
            break;
        }
    }
    storage_ = std::move(storage);
    prefix_ = storage_->data();
}

CostTable::CostTable(const CostTable& parent, std::uint64_t capacity)
    : f_(parent.f_), capacity_(capacity), storage_(parent.storage_),
      prefix_(parent.prefix_) {
    DBSP_REQUIRE(capacity <= parent.capacity_);
}

}  // namespace dbsp::model
