#include "model/cost_table.hpp"

#include "util/contracts.hpp"

namespace dbsp::model {

CostTable::CostTable(AccessFunction f, std::uint64_t capacity)
    : f_(std::move(f)), capacity_(capacity) {
    prefix_.resize(capacity_ + 1);
    prefix_[0] = 0.0;
    for (std::uint64_t x = 0; x < capacity_; ++x) {
        prefix_[x + 1] = prefix_[x] + f_(x);
    }
}

double CostTable::cost(std::uint64_t x) const {
    DBSP_REQUIRE(x < capacity_);
    return prefix_[x + 1] - prefix_[x];
}

double CostTable::range_cost(std::uint64_t begin, std::uint64_t end) const {
    DBSP_REQUIRE(begin <= end);
    DBSP_REQUIRE(end <= capacity_);
    return prefix_[end] - prefix_[begin];
}

}  // namespace dbsp::model
