#pragma once

/// \file types.hpp
/// Fundamental shared types of the machine models. All machine memories are
/// arrays of 64-bit words; addresses are 0-based; processor indices are dense
/// in [0, v) with v a power of two.

#include <cstddef>
#include <cstdint>

namespace dbsp::model {

using Word = std::uint64_t;       ///< Machine word: memory cell contents.
using Addr = std::uint64_t;       ///< Memory address (cell index).
using ProcId = std::uint64_t;     ///< D-BSP processor index in [0, v).
using StepIndex = std::size_t;    ///< Superstep number within a program.

/// A point-to-point D-BSP message. The paper assumes constant-size messages;
/// we fix the constant at two payload words, which is enough to ship a complex
/// double or a (key, tag) pair in a single message.
struct Message {
    ProcId src = 0;
    ProcId dest = 0;
    Word payload0 = 0;
    Word payload1 = 0;
};

}  // namespace dbsp::model
