#include "model/program.hpp"

#include <bit>

#include "util/contracts.hpp"

namespace dbsp::model {

StepContext::StepContext(ContextAccessor& ctx, const ContextLayout& layout,
                         const ClusterTree& tree, StepIndex superstep, unsigned label,
                         ProcId proc, ProcId proc_base)
    : ctx_(ctx), layout_(layout), tree_(tree), superstep_(superstep), label_(label),
      proc_(proc), proc_base_(proc_base) {}

Word StepContext::load(std::size_t i) {
    DBSP_REQUIRE(i < layout_.data_words);
    ++ops_;
    return ctx_.get(i);
}

void StepContext::store(std::size_t i, Word value) {
    DBSP_REQUIRE(i < layout_.data_words);
    ++ops_;
    ctx_.set(i, value);
}

double StepContext::load_double(std::size_t i) {
    return std::bit_cast<double>(load(i));
}

void StepContext::store_double(std::size_t i, double value) {
    store(i, std::bit_cast<Word>(value));
}

std::size_t StepContext::inbox_size() {
    ++ops_;
    read_inbox_ = true;
    return static_cast<std::size_t>(ctx_.get(layout_.in_count_offset()));
}

Message StepContext::inbox(std::size_t k) {
    DBSP_REQUIRE(k < layout_.max_messages);
    read_inbox_ = true;
    const std::size_t off = layout_.in_record_offset(k);
    ++ops_;
    Message m;
    m.src = ctx_.get(off);  // sources are stored as global ids by delivery
    m.payload0 = ctx_.get(off + 1);
    m.payload1 = ctx_.get(off + 2);
    m.dest = proc();
    return m;
}

void StepContext::send(ProcId dest, Word payload0, Word payload1) {
    DBSP_REQUIRE(dest >= proc_base_);
    const ProcId local_dest = dest - proc_base_;
    DBSP_REQUIRE(local_dest < tree_.processors());
    // Communication discipline of an i-superstep: messages may not leave the
    // sender's i-cluster (Section 2).
    DBSP_REQUIRE(tree_.same_cluster(proc_, local_dest, label_));
    DBSP_REQUIRE(sent_ < layout_.max_messages);
    const std::size_t off = layout_.out_record_offset(sent_);
    ctx_.set(off, local_dest);
    ctx_.set(off + 1, payload0);
    ctx_.set(off + 2, payload1);
    ++sent_;
    ++ops_;
}

void StepContext::send_double(ProcId dest, double payload0, double payload1) {
    send(dest, std::bit_cast<Word>(payload0), std::bit_cast<Word>(payload1));
}

RelabeledProgram::RelabeledProgram(Program& base, std::vector<StepIndex> step_map,
                                   std::vector<unsigned> labels)
    : base_(base), step_map_(std::move(step_map)), labels_(std::move(labels)) {
    DBSP_REQUIRE(step_map_.size() == labels_.size());
    DBSP_REQUIRE(!labels_.empty());
    const unsigned log_v = ilog2(base_.num_processors());
    StepIndex expected_next = 0;
    for (StepIndex s = 0; s < step_map_.size(); ++s) {
        DBSP_REQUIRE(labels_[s] <= log_v);
        if (step_map_[s] != kDummy) {
            // Real supersteps must appear exactly once, in order.
            DBSP_REQUIRE(step_map_[s] == expected_next);
            ++expected_next;
        }
    }
    DBSP_REQUIRE(expected_next == base_.num_supersteps());
}

void RelabeledProgram::step(StepIndex s, ProcId p, StepContext& ctx) {
    if (step_map_[s] == kDummy) {
        return;  // Dummy supersteps perform no computation and send nothing.
    }
    base_.step(step_map_[s], p, ctx);
}

}  // namespace dbsp::model
