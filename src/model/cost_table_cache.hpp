#pragma once

/// \file cost_table_cache.hpp
/// Process-wide cache of CostTable prefix arrays. A sweep over
/// n = 2^10 ... 2^22 with three access functions used to rebuild an
/// O(capacity) prefix array for every (function, size) data point; the cache
/// builds each function's table once at the largest capacity seen and hands
/// out shared (or sliced) views for every other request. Slices are exact:
/// the prefix loop is a running sum, so the first n+1 entries of a larger
/// table equal a fresh build at capacity n bit for bit.
///
/// Identity is established with AccessFunction::key() — family tag and
/// parameter for the closed-form functions, name plus a charged-value probe
/// fingerprint for customs — so two lambdas that merely share a name cannot
/// alias each other's tables.
///
/// Thread-safe: the parallel benchmark harness hits it from every worker.
///
/// Bounded: the cache holds at most max_entries() tables and evicts the
/// least-recently-used key beyond that. One bench run touches a handful of
/// access functions, but a long-lived dbsp_serve process sees an unbounded
/// stream of distinct fingerprints, and every table is O(capacity) words.
/// Eviction is invisible to charged costs: a re-request after eviction
/// rebuilds the identical prefix array (the build is a deterministic running
/// sum of f), so only the builds/hits split changes, never a charged value.
///
/// Disabling: set_enabled(false) drops the cache's *own* references so later
/// requests build fresh, but every table is handed out as a
/// shared_ptr<const CostTable> — tables concurrent workers already hold stay
/// alive and immutable for as long as they keep the pointer. A
/// ScopedCostTableCache(false) inside one parallel_for worker therefore
/// cannot invalidate another worker's table (regression test:
/// CostTableCache.DisableInOneWorkerCannotInvalidateConcurrentTables). The
/// enabled flag itself is process-global, so concurrent scoped toggles race
/// on *cache effectiveness* (hit rates), never on correctness.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "model/cost_table.hpp"

namespace dbsp::model {

class CostTableCache {
public:
    /// The singleton used by hmm::Machine / bt::Machine.
    static CostTableCache& global();

    /// A table for \p f over [0, capacity): cached, sliced from a larger
    /// cached table, or freshly built (and cached) as needed. When the cache
    /// is disabled every call builds a fresh private table (the seed
    /// behaviour, kept for the bit-for-bit cross-checks).
    std::shared_ptr<const CostTable> get(const AccessFunction& f, std::uint64_t capacity);

    struct Stats {
        std::uint64_t builds = 0;     ///< O(capacity) prefix constructions
        std::uint64_t hits = 0;       ///< exact-capacity reuses
        std::uint64_t slices = 0;     ///< smaller-capacity views of a cached table
        std::uint64_t evictions = 0;  ///< LRU drops after exceeding max_entries
        /// Table builds a cacheless implementation would have performed.
        std::uint64_t builds_avoided() const { return hits + slices; }
    };
    Stats stats() const;

    /// Drop all cached tables (stats are kept).
    void clear();

    void set_enabled(bool enabled);
    bool enabled() const;

    /// LRU bound on distinct cached keys. Setting a smaller bound evicts
    /// immediately; 0 is rejected (use set_enabled(false) to bypass caching).
    void set_max_entries(std::size_t max_entries);
    std::size_t max_entries() const;

    /// Number of tables currently held.
    std::size_t size() const;

    /// Default max_entries(): far above the handful of access functions any
    /// single experiment uses, small enough that a serve process hosting
    /// adversarially many distinct custom functions stays bounded.
    static constexpr std::size_t kDefaultMaxEntries = 64;

private:
    struct Entry {
        std::shared_ptr<const CostTable> table;
        std::list<std::string>::iterator lru_pos;  ///< position in lru_
    };

    /// Mark \p it most-recently-used. Caller holds mutex_.
    void touch(std::unordered_map<std::string, Entry>::iterator it);
    /// Evict least-recently-used entries until size() <= max_entries_.
    /// Caller holds mutex_.
    void enforce_cap();

    mutable std::mutex mutex_;
    bool enabled_ = true;
    Stats stats_;
    std::size_t max_entries_ = kDefaultMaxEntries;
    /// Keys ordered most- to least-recently used; back() evicts first.
    std::list<std::string> lru_;
    std::unordered_map<std::string, Entry> tables_;
};

/// RAII helper for tests: force the cache on/off within a scope.
class ScopedCostTableCache {
public:
    explicit ScopedCostTableCache(bool enabled)
        : previous_(CostTableCache::global().enabled()) {
        CostTableCache::global().set_enabled(enabled);
    }
    ~ScopedCostTableCache() { CostTableCache::global().set_enabled(previous_); }
    ScopedCostTableCache(const ScopedCostTableCache&) = delete;
    ScopedCostTableCache& operator=(const ScopedCostTableCache&) = delete;

private:
    bool previous_;
};

}  // namespace dbsp::model
