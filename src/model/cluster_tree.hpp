#pragma once

/// \file cluster_tree.hpp
/// Index arithmetic for the D-BSP binary decomposition tree (Section 2).
/// For a v-processor machine (v a power of two) and level 0 <= i <= log v, the
/// processors are partitioned into 2^i disjoint i-clusters of v/2^i
/// consecutive processors each; C^(i)_j = C^(i+1)_{2j} union C^(i+1)_{2j+1}.

#include "util/bits.hpp"
#include "util/contracts.hpp"

#include "model/types.hpp"

namespace dbsp::model {

class ClusterTree {
public:
    /// \p v must be a power of two.
    explicit ClusterTree(std::uint64_t v) : v_(v), log_v_(ilog2(v)) {
        DBSP_REQUIRE(is_pow2(v));
    }

    std::uint64_t processors() const { return v_; }
    unsigned log_processors() const { return log_v_; }

    /// Number of i-clusters (= 2^i); requires i <= log v.
    std::uint64_t num_clusters(unsigned i) const {
        DBSP_REQUIRE(i <= log_v_);
        return std::uint64_t{1} << i;
    }

    /// Processors per i-cluster (= v / 2^i).
    std::uint64_t cluster_size(unsigned i) const {
        DBSP_REQUIRE(i <= log_v_);
        return v_ >> i;
    }

    /// Index j of the i-cluster containing processor \p p.
    std::uint64_t cluster_of(ProcId p, unsigned i) const {
        DBSP_REQUIRE(p < v_);
        DBSP_REQUIRE(i <= log_v_);
        return p >> (log_v_ - i);
    }

    /// First processor of the j-th i-cluster.
    ProcId cluster_first(std::uint64_t j, unsigned i) const {
        DBSP_REQUIRE(j < num_clusters(i));
        return j << (log_v_ - i);
    }

    /// True iff p and q lie in the same i-cluster (communication in an
    /// i-superstep must stay within i-clusters).
    bool same_cluster(ProcId p, ProcId q, unsigned i) const {
        return cluster_of(p, i) == cluster_of(q, i);
    }

private:
    std::uint64_t v_;
    unsigned log_v_;
};

}  // namespace dbsp::model
