#pragma once

/// \file superstep_exec.hpp
/// Superstep execution helpers shared by every executor (the direct D-BSP
/// machine and the HMM/BT simulators). Centralizing the step-invocation and
/// message-delivery protocol here is what guarantees the executors agree
/// bit-for-bit on functional behaviour:
///
///  * a step that read its inbox has the inbox cleared afterwards; an unread
///    inbox persists (so L-smoothing dummy supersteps are transparent);
///  * after a step, the outgoing count word is committed;
///  * delivery walks senders in ascending processor order and appends to the
///    destination inboxes, then resets the sender's outgoing count, giving a
///    canonical (src, send-order) inbox ordering.

#include <memory>
#include <vector>

#include "model/context_layout.hpp"
#include "model/program.hpp"

namespace dbsp::model {

/// Result of running one processor's step callback.
struct StepOutcome {
    std::uint64_t ops = 0;     ///< local-computation operations performed
    std::size_t sent = 0;      ///< messages emitted
};

/// Run program superstep \p s for processor \p p against \p acc, then commit
/// the outgoing count and apply the inbox-consumption rule.
inline StepOutcome run_processor_step(Program& program, const ContextLayout& layout,
                                      const ClusterTree& tree, StepIndex s, ProcId p,
                                      ContextAccessor& acc) {
    StepContext ctx(acc, layout, tree, s, program.label(s), p, program.proc_id_base());
    program.step(s, p, ctx);
    acc.set(layout.out_count_offset(), ctx.sent());
    if (ctx.read_inbox()) {
        acc.set(layout.in_count_offset(), 0);
    }
    return StepOutcome{ctx.ops(), ctx.sent()};
}

/// Accessor source: maps a processor id to an accessor for its context
/// storage. Replaces the former std::function-of-std::function AccessorFn —
/// one devirtualizable call per processor, no type-erasure allocations on the
/// delivery hot path. The returned reference stays valid until the next at()
/// call (sources typically rebind a single accessor object).
class AccessorSource {
public:
    virtual ~AccessorSource() = default;
    virtual ContextAccessor& at(ProcId p) = 0;

    /// Create an independent shard of this source for one worker of a
    /// sharded delivery: its at() accessors touch the same underlying
    /// storage but fold all charges/telemetry/trace events into private
    /// accumulators. nullptr (the default) means the source cannot shard and
    /// deliver_messages_sharded falls back to the serial protocol.
    virtual std::unique_ptr<AccessorSource> make_shard() { return nullptr; }

    /// Fold one shard's accumulators back into this source (called in
    /// ascending shard order, serially) and clear the shard for reuse.
    /// No-op for uncharged sources.
    virtual void merge_shard(AccessorSource& shard) { (void)shard; }
};

/// AccessorSource over per-processor flat word vectors — the direct machine's
/// storage shape, shared by trace recording and the unit tests.
class VectorAccessorSource final : public AccessorSource {
public:
    VectorAccessorSource(std::vector<std::vector<Word>>& contexts, std::size_t mu)
        : contexts_(contexts), mu_(mu) {}
    ContextAccessor& at(ProcId p) override {
        acc_.rebind(contexts_[p].data(), mu_);
        return acc_;
    }
    /// Uncharged storage: a shard is just another rebindable accessor over
    /// the same vectors, and merging is a no-op.
    std::unique_ptr<AccessorSource> make_shard() override {
        return std::make_unique<VectorAccessorSource>(contexts_, mu_);
    }

private:
    std::vector<std::vector<Word>>& contexts_;
    std::size_t mu_;
    FlatContextAccessor acc_{nullptr, 0};
};

/// Fixed shard width of the sharded delivery protocol: senders (phase 1) and
/// destination inboxes (phase 2) are partitioned into runs of this many
/// processors. The width is part of the charging structure — it never
/// depends on the thread count, so charge totals cannot either.
inline constexpr std::uint64_t kDeliveryShardProcs = 64;

/// Per-shard state of a sharded delivery (kept in DeliveryScratch so the
/// vectors and shard sources persist across supersteps).
struct DeliveryShard {
    std::vector<Message> pending;
    std::vector<Word> words;
    std::unique_ptr<AccessorSource> source;
};

/// Reusable scratch space for deliver_messages. Executors that deliver every
/// superstep keep one instance alive across the whole run so the message
/// vector and the bulk-read staging buffer stop being reallocated per step.
struct DeliveryScratch {
    std::vector<Message> pending;
    std::vector<Word> words;
    std::vector<std::size_t> received;
    std::vector<DeliveryShard> shards;
    const AccessorSource* shard_owner = nullptr;  ///< parent the shards belong to
};

/// Process-wide switch for the bulk (range) accessor fast path in
/// deliver_messages and the simulators' buffer scans. On by default; the
/// cross-check tests and the bench_micro baseline disable it to reproduce the
/// seed per-word code path (whose charged totals the fast path matches bit
/// for bit).
bool bulk_access_enabled();
void set_bulk_access_enabled(bool enabled);

/// RAII helper: force the bulk fast path on/off within a scope.
class ScopedBulkAccess {
public:
    explicit ScopedBulkAccess(bool enabled) : previous_(bulk_access_enabled()) {
        set_bulk_access_enabled(enabled);
    }
    ~ScopedBulkAccess() { set_bulk_access_enabled(previous_); }
    ScopedBulkAccess(const ScopedBulkAccess&) = delete;
    ScopedBulkAccess& operator=(const ScopedBulkAccess&) = delete;

private:
    bool previous_;
};

/// Deliver all pending outgoing messages of processors [first, first + count)
/// into their destination inboxes (destinations must lie in the same range for
/// a well-formed i-superstep; callers validate cluster membership at send
/// time). Processor ids here are tree-local; \p id_base (the program's
/// proc_id_base) is added to the stored message source so inboxes always
/// carry global ids. Returns the maximum number of messages received by any
/// processor. \p contexts provides context access for the local range;
/// \p scratch (optional) lets callers reuse buffers across supersteps.
std::size_t deliver_messages(const ContextLayout& layout, ProcId first, std::uint64_t count,
                             AccessorSource& contexts, ProcId id_base = 0,
                             DeliveryScratch* scratch = nullptr);

/// Sharded variant of deliver_messages with identical functional behaviour
/// (same inbox contents and ordering, same return value). Processors are
/// partitioned into kDeliveryShardProcs-wide shards; phase 1 collects each
/// sender shard's messages through a private shard source, phase 2 buckets
/// the canonical pending sequence by destination shard and appends through
/// the same shard sources, and after each phase the shards are merged back
/// into \p contexts in ascending shard order. The sharded charging structure
/// is unconditional — \p threads (>= 1, resolved by the caller) only decides
/// how many workers execute the shard loops, so charged totals are
/// bit-identical at every thread count. Falls back to the serial protocol
/// when \p contexts cannot shard (AccessorSource::make_shard == nullptr).
std::size_t deliver_messages_sharded(const ContextLayout& layout, ProcId first,
                                     std::uint64_t count, AccessorSource& contexts,
                                     ProcId id_base, DeliveryScratch& scratch,
                                     std::size_t threads);

}  // namespace dbsp::model
