#pragma once

/// \file superstep_exec.hpp
/// Superstep execution helpers shared by every executor (the direct D-BSP
/// machine and the HMM/BT simulators). Centralizing the step-invocation and
/// message-delivery protocol here is what guarantees the executors agree
/// bit-for-bit on functional behaviour:
///
///  * a step that read its inbox has the inbox cleared afterwards; an unread
///    inbox persists (so L-smoothing dummy supersteps are transparent);
///  * after a step, the outgoing count word is committed;
///  * delivery walks senders in ascending processor order and appends to the
///    destination inboxes, then resets the sender's outgoing count, giving a
///    canonical (src, send-order) inbox ordering.

#include <vector>

#include "model/context_layout.hpp"
#include "model/program.hpp"

namespace dbsp::model {

/// Result of running one processor's step callback.
struct StepOutcome {
    std::uint64_t ops = 0;     ///< local-computation operations performed
    std::size_t sent = 0;      ///< messages emitted
};

/// Run program superstep \p s for processor \p p against \p acc, then commit
/// the outgoing count and apply the inbox-consumption rule.
inline StepOutcome run_processor_step(Program& program, const ContextLayout& layout,
                                      const ClusterTree& tree, StepIndex s, ProcId p,
                                      ContextAccessor& acc) {
    StepContext ctx(acc, layout, tree, s, program.label(s), p, program.proc_id_base());
    program.step(s, p, ctx);
    acc.set(layout.out_count_offset(), ctx.sent());
    if (ctx.read_inbox()) {
        acc.set(layout.in_count_offset(), 0);
    }
    return StepOutcome{ctx.ops(), ctx.sent()};
}

/// Accessor source: maps a processor id to an accessor for its context
/// storage. Replaces the former std::function-of-std::function AccessorFn —
/// one devirtualizable call per processor, no type-erasure allocations on the
/// delivery hot path. The returned reference stays valid until the next at()
/// call (sources typically rebind a single accessor object).
class AccessorSource {
public:
    virtual ~AccessorSource() = default;
    virtual ContextAccessor& at(ProcId p) = 0;
};

/// AccessorSource over per-processor flat word vectors — the direct machine's
/// storage shape, shared by trace recording and the unit tests.
class VectorAccessorSource final : public AccessorSource {
public:
    VectorAccessorSource(std::vector<std::vector<Word>>& contexts, std::size_t mu)
        : contexts_(contexts), mu_(mu) {}
    ContextAccessor& at(ProcId p) override {
        acc_.rebind(contexts_[p].data(), mu_);
        return acc_;
    }

private:
    std::vector<std::vector<Word>>& contexts_;
    std::size_t mu_;
    FlatContextAccessor acc_{nullptr, 0};
};

/// Reusable scratch space for deliver_messages. Executors that deliver every
/// superstep keep one instance alive across the whole run so the message
/// vector and the bulk-read staging buffer stop being reallocated per step.
struct DeliveryScratch {
    std::vector<Message> pending;
    std::vector<Word> words;
    std::vector<std::size_t> received;
};

/// Process-wide switch for the bulk (range) accessor fast path in
/// deliver_messages and the simulators' buffer scans. On by default; the
/// cross-check tests and the bench_micro baseline disable it to reproduce the
/// seed per-word code path (whose charged totals the fast path matches bit
/// for bit).
bool bulk_access_enabled();
void set_bulk_access_enabled(bool enabled);

/// RAII helper: force the bulk fast path on/off within a scope.
class ScopedBulkAccess {
public:
    explicit ScopedBulkAccess(bool enabled) : previous_(bulk_access_enabled()) {
        set_bulk_access_enabled(enabled);
    }
    ~ScopedBulkAccess() { set_bulk_access_enabled(previous_); }
    ScopedBulkAccess(const ScopedBulkAccess&) = delete;
    ScopedBulkAccess& operator=(const ScopedBulkAccess&) = delete;

private:
    bool previous_;
};

/// Deliver all pending outgoing messages of processors [first, first + count)
/// into their destination inboxes (destinations must lie in the same range for
/// a well-formed i-superstep; callers validate cluster membership at send
/// time). Processor ids here are tree-local; \p id_base (the program's
/// proc_id_base) is added to the stored message source so inboxes always
/// carry global ids. Returns the maximum number of messages received by any
/// processor. \p contexts provides context access for the local range;
/// \p scratch (optional) lets callers reuse buffers across supersteps.
std::size_t deliver_messages(const ContextLayout& layout, ProcId first, std::uint64_t count,
                             AccessorSource& contexts, ProcId id_base = 0,
                             DeliveryScratch* scratch = nullptr);

}  // namespace dbsp::model
