#pragma once

/// \file superstep_exec.hpp
/// Superstep execution helpers shared by every executor (the direct D-BSP
/// machine and the HMM/BT simulators). Centralizing the step-invocation and
/// message-delivery protocol here is what guarantees the executors agree
/// bit-for-bit on functional behaviour:
///
///  * a step that read its inbox has the inbox cleared afterwards; an unread
///    inbox persists (so L-smoothing dummy supersteps are transparent);
///  * after a step, the outgoing count word is committed;
///  * delivery walks senders in ascending processor order and appends to the
///    destination inboxes, then resets the sender's outgoing count, giving a
///    canonical (src, send-order) inbox ordering.

#include <functional>

#include "model/context_layout.hpp"
#include "model/program.hpp"

namespace dbsp::model {

/// Result of running one processor's step callback.
struct StepOutcome {
    std::uint64_t ops = 0;     ///< local-computation operations performed
    std::size_t sent = 0;      ///< messages emitted
};

/// Run program superstep \p s for processor \p p against \p acc, then commit
/// the outgoing count and apply the inbox-consumption rule.
inline StepOutcome run_processor_step(Program& program, const ContextLayout& layout,
                                      const ClusterTree& tree, StepIndex s, ProcId p,
                                      ContextAccessor& acc) {
    StepContext ctx(acc, layout, tree, s, program.label(s), p, program.proc_id_base());
    program.step(s, p, ctx);
    acc.set(layout.out_count_offset(), ctx.sent());
    if (ctx.read_inbox()) {
        acc.set(layout.in_count_offset(), 0);
    }
    return StepOutcome{ctx.ops(), ctx.sent()};
}

/// Accessor factory: maps a processor id to a (short-lived) accessor for its
/// context storage. The callback owns the accessor's lifetime for the duration
/// of the inner function call.
using AccessorFn = std::function<void(ProcId, const std::function<void(ContextAccessor&)>&)>;

/// Deliver all pending outgoing messages of processors [first, first + count)
/// into their destination inboxes (destinations must lie in the same range for
/// a well-formed i-superstep; callers validate cluster membership at send
/// time). Processor ids here are tree-local; \p id_base (the program's
/// proc_id_base) is added to the stored message source so inboxes always
/// carry global ids. Returns the maximum number of messages received by any
/// processor. \p with_accessor provides context access for the local range.
std::size_t deliver_messages(const ContextLayout& layout, ProcId first, std::uint64_t count,
                             const AccessorFn& with_accessor, ProcId id_base = 0);

}  // namespace dbsp::model
