#pragma once

/// \file primitives.hpp
/// Reference HMM computations used by the benchmarks:
///  * touch_all — the touching problem of Fact 1/Fact 2: bring each of the
///    first n cells to the top of memory. On HMM there is no block transfer,
///    so the best possible is a plain scan costing Theta(n f(n)).
///  * oblivious kernels (sum, sorted merge pass, naive matrix multiply) that
///    ignore the hierarchy; they supply the "flat-memory algorithm run on a
///    hierarchical machine" baselines that the introduction argues against.

#include "hmm/machine.hpp"

namespace dbsp::hmm {

/// Touch cells [0, n): read each once. Cost: sum_{x<n} f(x) = Theta(n f(n)).
/// Returns the XOR of the touched words (forces real reads).
Word touch_all(Machine& m, std::uint64_t n);

/// Sum of words [0, n) as unsigned values; same Theta(n f(n)) cost shape.
Word sum_range(Machine& m, std::uint64_t n);

/// Hierarchy-oblivious comparison-based merge sort of cells [0, n), using
/// [n, 2n) as scratch; every compare touches the cells where they live, so
/// the cost is Theta(n log n * f(n)) — the classic "RAM algorithm on HMM"
/// slowdown the paper's introduction describes.
void oblivious_merge_sort(Machine& m, std::uint64_t n);

/// Hierarchy-oblivious schoolbook multiply of two s x s row-major matrices at
/// addresses a and b into c (disjoint); cost Theta(s^3 f(3 s^2))-ish.
void oblivious_matmul(Machine& m, model::Addr a, model::Addr b, model::Addr c,
                      std::uint64_t s);

}  // namespace dbsp::hmm
