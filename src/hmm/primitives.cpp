#include "hmm/primitives.hpp"

#include <vector>

#include "util/contracts.hpp"

namespace dbsp::hmm {

Word touch_all(Machine& m, std::uint64_t n) {
    DBSP_REQUIRE(n <= m.capacity());
    Word acc = 0;
    for (std::uint64_t x = 0; x < n; ++x) acc ^= m.read(x);
    return acc;
}

Word sum_range(Machine& m, std::uint64_t n) {
    DBSP_REQUIRE(n <= m.capacity());
    Word acc = 0;
    for (std::uint64_t x = 0; x < n; ++x) {
        acc += m.read(x);
        m.charge(1.0);
    }
    return acc;
}

namespace {

void merge_runs(Machine& m, std::uint64_t lo, std::uint64_t mid, std::uint64_t hi,
                std::uint64_t scratch) {
    std::uint64_t i = lo, j = mid, k = scratch;
    while (i < mid && j < hi) {
        const Word a = m.read(i);
        const Word b = m.read(j);
        m.charge(1.0);  // comparison
        if (a <= b) {
            m.write(k++, a);
            ++i;
        } else {
            m.write(k++, b);
            ++j;
        }
    }
    while (i < mid) m.write(k++, m.read(i++));
    while (j < hi) m.write(k++, m.read(j++));
    m.copy_block(scratch, lo, hi - lo);
}

}  // namespace

void oblivious_merge_sort(Machine& m, std::uint64_t n) {
    DBSP_REQUIRE(2 * n <= m.capacity());
    for (std::uint64_t width = 1; width < n; width *= 2) {
        for (std::uint64_t lo = 0; lo + width < n; lo += 2 * width) {
            const std::uint64_t mid = lo + width;
            const std::uint64_t hi = std::min(lo + 2 * width, n);
            merge_runs(m, lo, mid, hi, n);
        }
    }
}

void oblivious_matmul(Machine& m, model::Addr a, model::Addr b, model::Addr c,
                      std::uint64_t s) {
    DBSP_REQUIRE(a + s * s <= m.capacity());
    DBSP_REQUIRE(b + s * s <= m.capacity());
    DBSP_REQUIRE(c + s * s <= m.capacity());
    for (std::uint64_t i = 0; i < s; ++i) {
        for (std::uint64_t j = 0; j < s; ++j) {
            Word acc = 0;
            for (std::uint64_t k = 0; k < s; ++k) {
                acc += m.read(a + i * s + k) * m.read(b + k * s + j);
                m.charge(1.0);  // multiply-add
            }
            m.write(c + i * s + j, acc);
        }
    }
}

}  // namespace dbsp::hmm
