#pragma once

/// \file matmul.hpp
/// Hierarchy-conscious matrix multiplication written directly for the
/// f(x)-HMM — the [AACS87]-style blocked recursion the simulated D-BSP
/// algorithm is measured against in E4.
///
/// C += A * B over the (mod 2^64) semiring, all s x s row-major. The
/// recursion splits into quadrants and multiplies 2x2 blockwise; each
/// sub-multiplication first gathers its three operand quadrants into
/// contiguous buffers at the top of memory (row-by-row charged copies),
/// recurses there, and scatters C back. Cost
///     T(n) = 8 T(n/4) + O(n f(n))   (n = s^2 elements)
/// = O(n^(3/2)) for f = x^alpha with alpha < 1/2, O(n^(3/2) log n) at
/// alpha = 1/2, O(n^(1+alpha)) above, and O(n^(3/2)) for log x — the
/// [AACS87] bounds of Proposition 7.
///
/// Layout contract: A, B, C at the given bases; [0, work_limit) free working
/// space with work_limit >= 6 * s * s / ... (3 quadrant buffers per level,
/// geometric: 3 * (s/2)^2 * 4/3 = s^2 suffices). s must be a power of two.

#include "hmm/machine.hpp"

namespace dbsp::hmm {

/// C (at c) += A (at a) * B (at b); all three s x s row-major, disjoint from
/// each other and from the workspace [0, s*s).
void blocked_matmul(Machine& m, model::Addr a, model::Addr b, model::Addr c,
                    std::uint64_t s);

}  // namespace dbsp::hmm
