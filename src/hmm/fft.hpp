#pragma once

/// \file fft.hpp
/// A hierarchy-conscious FFT written *directly* for the f(x)-HMM — the
/// best-known native algorithm ([AACS87]), against which Proposition 8
/// compares the simulated D-BSP algorithms.
///
/// Four-step recursion with explicit data movement: view the n-point input
/// (interleaved re/im, element e at words base + 2e) as a sqrt(n) x sqrt(n)
/// row-major matrix; transpose; bring each row to the top of memory, solve
/// the sqrt(n)-point subproblem there, apply twiddles, write back; transpose;
/// second row pass; transpose. Cost recurrence
///     T(n) = 2 sqrt(n) T(sqrt(n)) + O(n f(n)),
/// which solves to O(n^(1+alpha)) for f = x^alpha and O(n log n log log n)
/// for f = log x — the [AACS87] upper bounds the paper's simulation matches.
///
/// Layout contract: the 2n words of data live at [base, base + 2n) and the
/// caller keeps [0, base) free (the recursion tower stages rows there).
/// n must satisfy the square-split condition (log2 n a power of two, or
/// n <= 4). Output is the natural-order DFT.

#include "hmm/machine.hpp"

namespace dbsp::hmm {

/// In-place natural-order DFT of the n complex elements at [base, base+2n).
void fft_natural(Machine& m, model::Addr base, std::uint64_t n);

}  // namespace dbsp::hmm
