#include "hmm/machine.hpp"

#include <algorithm>
#include <bit>

#include "model/cost_table_cache.hpp"
#include "report/metrics.hpp"
#include "util/contracts.hpp"

namespace dbsp::hmm {

Machine::Machine(AccessFunction f, std::uint64_t capacity)
    : table_(model::CostTableCache::global().get(f, capacity)), memory_(capacity, 0) {}

// Telemetry discipline: the bulk delivery path often moves single message
// records (a handful of words), leaving only ~15 cycles of real work per op —
// even one relaxed atomic RMW per op costs tens of percent there (measured on
// the bench_micro E3 workload). So the hot path does three plain member adds
// and the registry sees one batched update per machine lifetime, here.
void Machine::note_bulk(Addr deepest, std::uint64_t words) {
    ++bulk_ops_;
    bulk_words_ += words;
    bulk_words_by_level_[std::bit_width(deepest)] += words;
}

void Machine::publish_metrics() {
    if (words_touched_ != 0) {
        static auto& touched = report::metric_counter("hmm.words_touched");
        touched.add(words_touched_);
        words_touched_ = 0;
    }
    if (bulk_ops_ == 0) return;
    static auto& ops = report::metric_counter("hmm.bulk_ops");
    static auto& total = report::metric_counter("hmm.bulk_words");
    static auto& by_level = report::metric_histogram("hmm.words_by_level");
    ops.add(bulk_ops_);
    total.add(bulk_words_);
    for (unsigned b = 0; b < bulk_words_by_level_.size(); ++b) {
        if (bulk_words_by_level_[b] != 0) by_level.add_to_bucket(b, bulk_words_by_level_[b]);
    }
    bulk_ops_ = 0;
    bulk_words_ = 0;
    bulk_words_by_level_.fill(0);
}

Machine::~Machine() { publish_metrics(); }

Word Machine::read(Addr x) {
    DBSP_REQUIRE(x < capacity());
    cost_ += table_->cost(x);
    ++words_touched_;
    return memory_[x];
}

void Machine::write(Addr x, Word value) {
    DBSP_REQUIRE(x < capacity());
    cost_ += table_->cost(x);
    ++words_touched_;
    memory_[x] = value;
}

Word Machine::read_traced(Addr x) {
    DBSP_REQUIRE(x < capacity());
    const double delta = table_->cost(x);
    cost_ += delta;
    ++words_touched_;
    if (trace_ != nullptr) trace_->access(x, delta);
    return memory_[x];
}

void Machine::write_traced(Addr x, Word value) {
    DBSP_REQUIRE(x < capacity());
    const double delta = table_->cost(x);
    cost_ += delta;
    ++words_touched_;
    if (trace_ != nullptr) trace_->access(x, delta);
    memory_[x] = value;
}

void Machine::read_range(Addr x, std::span<Word> out) {
    if (out.empty()) return;
    DBSP_REQUIRE(x + out.size() <= capacity());
    cost_ = table_->accumulate(x, x + out.size(), cost_);
    words_touched_ += out.size();
    if (trace_ != nullptr) trace_->access_range(table_->prefix(), x, x + out.size());
    note_bulk(x + out.size() - 1, out.size());
    std::copy_n(memory_.begin() + static_cast<std::ptrdiff_t>(x), out.size(), out.begin());
}

void Machine::write_range(Addr x, std::span<const Word> values) {
    if (values.empty()) return;
    DBSP_REQUIRE(x + values.size() <= capacity());
    cost_ = table_->accumulate(x, x + values.size(), cost_);
    words_touched_ += values.size();
    if (trace_ != nullptr) trace_->access_range(table_->prefix(), x, x + values.size());
    note_bulk(x + values.size() - 1, values.size());
    std::copy_n(values.begin(), values.size(),
                memory_.begin() + static_cast<std::ptrdiff_t>(x));
}

void Machine::swap_blocks(Addr a, Addr b, std::uint64_t len) {
    if (len == 0) return;
    DBSP_REQUIRE(a + len <= capacity() && b + len <= capacity());
    DBSP_REQUIRE(a + len <= b || b + len <= a);  // disjoint
    const double delta =
        2.0 * (table_->range_cost(a, a + len) + table_->range_cost(b, b + len));
    cost_ += delta;
    words_touched_ += 4 * len;
    if (trace_ != nullptr) {
        trace_->block_op(table_->prefix(), delta, 2, {{a, a + len}, {b, b + len}});
    }
    note_bulk(std::max(a, b) + len - 1, 4 * len);
    std::swap_ranges(memory_.begin() + static_cast<std::ptrdiff_t>(a),
                     memory_.begin() + static_cast<std::ptrdiff_t>(a + len),
                     memory_.begin() + static_cast<std::ptrdiff_t>(b));
}

void Machine::copy_block(Addr src, Addr dst, std::uint64_t len) {
    if (len == 0) return;
    DBSP_REQUIRE(src + len <= capacity() && dst + len <= capacity());
    DBSP_REQUIRE(src + len <= dst || dst + len <= src);  // disjoint
    const double delta =
        table_->range_cost(src, src + len) + table_->range_cost(dst, dst + len);
    cost_ += delta;
    words_touched_ += 2 * len;
    if (trace_ != nullptr) {
        trace_->block_op(table_->prefix(), delta, 1, {{src, src + len}, {dst, dst + len}});
    }
    note_bulk(std::max(src, dst) + len - 1, 2 * len);
    std::copy(memory_.begin() + static_cast<std::ptrdiff_t>(src),
              memory_.begin() + static_cast<std::ptrdiff_t>(src + len),
              memory_.begin() + static_cast<std::ptrdiff_t>(dst));
}

void Machine::charge_range(Addr begin, Addr end) {
    DBSP_REQUIRE(begin <= end && end <= capacity());
    const double delta = table_->range_cost(begin, end);
    cost_ += delta;
    words_touched_ += end - begin;
    if (trace_ != nullptr) trace_->block_op(table_->prefix(), delta, 1, {{begin, end}});
    if (end > begin) note_bulk(end - 1, end - begin);
}

void Machine::charge(double c) {
    DBSP_REQUIRE(c >= 0.0);
    cost_ += c;
    if (trace_ != nullptr) trace_->charge(c);
}

void Machine::charge_swap_blocks(Addr a, Addr b, std::uint64_t len) {
    // swap_blocks minus the std::swap_ranges: same delta expression, same
    // fold, same telemetry, same trace event.
    if (len == 0) return;
    DBSP_REQUIRE(a + len <= capacity() && b + len <= capacity());
    DBSP_REQUIRE(a + len <= b || b + len <= a);  // disjoint
    const double delta =
        2.0 * (table_->range_cost(a, a + len) + table_->range_cost(b, b + len));
    cost_ += delta;
    words_touched_ += 4 * len;
    if (trace_ != nullptr) {
        trace_->block_op(table_->prefix(), delta, 2, {{a, a + len}, {b, b + len}});
    }
    note_bulk(std::max(a, b) + len - 1, 4 * len);
}

void Machine::merge_shard(const ShardAccount& account) {
    cost_ += account.cost;
    words_touched_ += account.words_touched;
    bulk_ops_ += account.bulk_ops;
    bulk_words_ += account.bulk_words;
    for (unsigned b = 0; b < account.bulk_words_by_level.size(); ++b) {
        bulk_words_by_level_[b] += account.bulk_words_by_level[b];
    }
}

}  // namespace dbsp::hmm
