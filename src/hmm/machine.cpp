#include "hmm/machine.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace dbsp::hmm {

Machine::Machine(AccessFunction f, std::uint64_t capacity)
    : table_(std::move(f), capacity), memory_(capacity, 0) {}

Word Machine::read(Addr x) {
    DBSP_REQUIRE(x < capacity());
    cost_ += table_.cost(x);
    return memory_[x];
}

void Machine::write(Addr x, Word value) {
    DBSP_REQUIRE(x < capacity());
    cost_ += table_.cost(x);
    memory_[x] = value;
}

void Machine::swap_blocks(Addr a, Addr b, std::uint64_t len) {
    if (len == 0) return;
    DBSP_REQUIRE(a + len <= capacity() && b + len <= capacity());
    DBSP_REQUIRE(a + len <= b || b + len <= a);  // disjoint
    cost_ += 2.0 * (table_.range_cost(a, a + len) + table_.range_cost(b, b + len));
    std::swap_ranges(memory_.begin() + static_cast<std::ptrdiff_t>(a),
                     memory_.begin() + static_cast<std::ptrdiff_t>(a + len),
                     memory_.begin() + static_cast<std::ptrdiff_t>(b));
}

void Machine::copy_block(Addr src, Addr dst, std::uint64_t len) {
    if (len == 0) return;
    DBSP_REQUIRE(src + len <= capacity() && dst + len <= capacity());
    DBSP_REQUIRE(src + len <= dst || dst + len <= src);  // disjoint
    cost_ += table_.range_cost(src, src + len) + table_.range_cost(dst, dst + len);
    std::copy(memory_.begin() + static_cast<std::ptrdiff_t>(src),
              memory_.begin() + static_cast<std::ptrdiff_t>(src + len),
              memory_.begin() + static_cast<std::ptrdiff_t>(dst));
}

void Machine::charge_range(Addr begin, Addr end) {
    DBSP_REQUIRE(begin <= end && end <= capacity());
    cost_ += table_.range_cost(begin, end);
}

void Machine::charge(double c) {
    DBSP_REQUIRE(c >= 0.0);
    cost_ += c;
}

}  // namespace dbsp::hmm
