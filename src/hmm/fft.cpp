#include "hmm/fft.hpp"

#include <bit>
#include <cmath>
#include <complex>
#include <numbers>

#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::hmm {

namespace {

using model::Addr;
using model::Word;

std::complex<double> load_c(Machine& m, Addr base, std::uint64_t e) {
    return {std::bit_cast<double>(m.read(base + 2 * e)),
            std::bit_cast<double>(m.read(base + 2 * e + 1))};
}

void store_c(Machine& m, Addr base, std::uint64_t e, std::complex<double> v) {
    m.write(base + 2 * e, std::bit_cast<Word>(v.real()));
    m.write(base + 2 * e + 1, std::bit_cast<Word>(v.imag()));
}

std::complex<double> unit_root(std::uint64_t n, std::uint64_t exponent) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(exponent) / static_cast<double>(n);
    return {std::cos(angle), std::sin(angle)};
}

/// Direct O(n^2) DFT for the base case (n <= 4: constant work).
void dft_direct(Machine& m, Addr base, std::uint64_t n) {
    std::vector<std::complex<double>> x(n), out(n);
    for (std::uint64_t e = 0; e < n; ++e) x[e] = load_c(m, base, e);
    for (std::uint64_t k = 0; k < n; ++k) {
        std::complex<double> sum{0, 0};
        for (std::uint64_t j = 0; j < n; ++j) sum += x[j] * unit_root(n, (j * k) % n);
        out[k] = sum;
        m.charge(static_cast<double>(8 * n));
    }
    for (std::uint64_t e = 0; e < n; ++e) store_c(m, base, e, out[e]);
}

/// Elementwise in-place transpose of the side x side element matrix.
void transpose_elements(Machine& m, Addr base, std::uint64_t side) {
    for (std::uint64_t r = 0; r < side; ++r) {
        for (std::uint64_t c = r + 1; c < side; ++c) {
            const auto a = load_c(m, base, r * side + c);
            const auto b = load_c(m, base, c * side + r);
            store_c(m, base, r * side + c, b);
            store_c(m, base, c * side + r, a);
        }
    }
}

/// Words of top-of-memory staging the recursion on an n-point problem needs:
/// one row buffer per level, stacked from the top down.
std::uint64_t stage_need(std::uint64_t n) {
    if (n <= 4) return 0;
    const std::uint64_t side = std::uint64_t{1} << (ilog2(n) / 2);
    return stage_need(side) + 2 * side;
}

/// Core recursion; requires [0, base) free for staging, with
/// base >= stage_need(n) (the per-level row buffers are stacked at the very
/// top of memory — "bring each row to the top", as the cost recurrence
/// requires; staging merely below `base` would leave rows at depth ~base).
void fft_rec(Machine& m, Addr base, std::uint64_t n) {
    if (n <= 4) {
        dft_direct(m, base, n);
        return;
    }
    const std::uint64_t side = std::uint64_t{1} << (ilog2(n) / 2);
    const std::uint64_t row_words = 2 * side;
    const Addr stage = stage_need(side);  // this level's row buffer
    DBSP_REQUIRE(base >= stage + row_words);

    // Step 1: transpose, so columns become rows.
    transpose_elements(m, base, side);

    // Step 2: column DFTs (now rows), with the four-step twiddle folded in:
    // after the sub-DFT, position r' of row c is multiplied by w_n^(c r').
    for (std::uint64_t row = 0; row < side; ++row) {
        m.copy_block(base + row * row_words, stage, row_words);
        fft_rec(m, stage, side);
        for (std::uint64_t rp = 0; rp < side; ++rp) {
            store_c(m, stage, rp, load_c(m, stage, rp) * unit_root(n, (row * rp) % n));
            m.charge(8.0);
        }
        m.copy_block(stage, base + row * row_words, row_words);
    }

    // Step 3: transpose, so result rows regroup.
    transpose_elements(m, base, side);

    // Step 4: row DFTs.
    for (std::uint64_t row = 0; row < side; ++row) {
        m.copy_block(base + row * row_words, stage, row_words);
        fft_rec(m, stage, side);
        m.copy_block(stage, base + row * row_words, row_words);
    }

    // Step 5: final transpose yields natural order.
    transpose_elements(m, base, side);
}

}  // namespace

void fft_natural(Machine& m, model::Addr base, std::uint64_t n) {
    DBSP_REQUIRE(is_pow2(n));
    DBSP_REQUIRE(n <= 4 || is_pow2(ilog2(n)));
    DBSP_REQUIRE(base + 2 * n <= m.capacity());
    DBSP_REQUIRE(base >= stage_need(n));
    fft_rec(m, base, n);
}

}  // namespace dbsp::hmm
