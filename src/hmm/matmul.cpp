#include "hmm/matmul.hpp"

#include "util/bits.hpp"
#include "util/contracts.hpp"

namespace dbsp::hmm {

namespace {

using model::Addr;
using model::Word;

/// Workspace words the recursion needs at the top of memory: three
/// half-size quadrant buffers per level, stacked.
std::uint64_t need(std::uint64_t s) {
    if (s <= 4) return 0;
    const std::uint64_t h = s / 2;
    return 3 * h * h + need(h);
}

/// Direct schoolbook multiply-accumulate with charged accesses; reached with
/// the operands staged near the top of memory.
void mm_direct(Machine& m, Addr a, Addr b, Addr c, std::uint64_t s) {
    for (std::uint64_t i = 0; i < s; ++i) {
        for (std::uint64_t j = 0; j < s; ++j) {
            Word acc = m.read(c + i * s + j);
            for (std::uint64_t k = 0; k < s; ++k) {
                acc += m.read(a + i * s + k) * m.read(b + k * s + j);
                m.charge(1.0);
            }
            m.write(c + i * s + j, acc);
        }
    }
}

/// Copy quadrant (qi, qj) of the s x s matrix at `mat` to/from the
/// contiguous h x h buffer at `buf` (h = s/2), one charged row copy each.
void move_quadrant(Machine& m, Addr mat, std::uint64_t s, std::uint64_t qi,
                   std::uint64_t qj, Addr buf, bool to_matrix) {
    const std::uint64_t h = s / 2;
    for (std::uint64_t r = 0; r < h; ++r) {
        const Addr row = mat + (qi * h + r) * s + qj * h;
        const Addr stg = buf + r * h;
        if (to_matrix) {
            m.copy_block(stg, row, h);
        } else {
            m.copy_block(row, stg, h);
        }
    }
}

void mm_rec(Machine& m, Addr a, Addr b, Addr c, std::uint64_t s) {
    if (s <= 4) {
        mm_direct(m, a, b, c, s);
        return;
    }
    const std::uint64_t h = s / 2;
    const std::uint64_t q = h * h;
    const Addr w0 = need(h);  // this level's buffers sit above the sub-tower
    const Addr buf_a = w0, buf_b = w0 + q, buf_c = w0 + 2 * q;

    for (std::uint64_t i = 0; i < 2; ++i) {
        for (std::uint64_t j = 0; j < 2; ++j) {
            move_quadrant(m, c, s, i, j, buf_c, false);
            for (std::uint64_t k = 0; k < 2; ++k) {
                move_quadrant(m, a, s, i, k, buf_a, false);
                move_quadrant(m, b, s, k, j, buf_b, false);
                mm_rec(m, buf_a, buf_b, buf_c, h);
            }
            move_quadrant(m, c, s, i, j, buf_c, true);
        }
    }
}

}  // namespace

void blocked_matmul(Machine& m, model::Addr a, model::Addr b, model::Addr c,
                    std::uint64_t s) {
    DBSP_REQUIRE(is_pow2(s));
    DBSP_REQUIRE(a + s * s <= m.capacity());
    DBSP_REQUIRE(b + s * s <= m.capacity());
    DBSP_REQUIRE(c + s * s <= m.capacity());
    const std::uint64_t w = need(s);
    DBSP_REQUIRE(a >= w && b >= w && c >= w);
    mm_rec(m, a, b, c, s);
}

}  // namespace dbsp::hmm
