#pragma once

/// \file machine.hpp
/// The f(x)-HMM of Aggarwal, Alpern, Chandra and Snir [AACS87], Section 2 of
/// the paper: a random access machine over words where touching address x
/// costs f(x) for a nondecreasing (2,c)-uniform f. The machine both stores
/// real data and meters the exact model cost of every operation, so an
/// algorithm implemented against this interface is simultaneously executed
/// and priced.
///
/// Cost conventions (constant factors are irrelevant to every claim we
/// reproduce, but we fix them for determinism):
///  * read/write of address x: f(x);
///  * an n-ary operation on cells x1..xn: 1 + sum f(xi) — expressed by the
///    caller as the accesses plus charge(1);
///  * bulk helpers (swap_blocks, copy_block, charge_scan) charge the exact
///    per-cell sum of f over every range they touch, once per touch;
///  * read_range/write_range charge the identical per-cell sum as a
///    read()/write() loop, accumulated in the same ascending order — the
///    charged total is bit-for-bit the per-word path's — while moving the
///    data with one memcpy-able loop.
///
/// The cost table is obtained from the process-wide CostTableCache, so a
/// sweep constructing many machines over the same access function builds the
/// O(capacity) prefix array once.

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "model/access_function.hpp"
#include "model/cost_table.hpp"
#include "model/types.hpp"
#include "trace/sink.hpp"
#include "util/contracts.hpp"

namespace dbsp::hmm {

using model::AccessFunction;
using model::Addr;
using model::Word;

/// Private cost/telemetry accumulator for one execution shard of a parallel
/// simulation round. A shard folds its charges here (and its trace events
/// into a trace::BufferSink) with exactly the machine's accumulation
/// procedure, starting from zero; Machine::merge_shard then folds the
/// account into the machine in deterministic cluster order. Because the
/// shard structure and merge order are fixed — thread count only decides
/// who executes a shard — totals are bit-identical at every thread count.
struct ShardAccount {
    double cost = 0.0;
    std::uint64_t words_touched = 0;
    std::uint64_t bulk_ops = 0;
    std::uint64_t bulk_words = 0;
    std::array<std::uint64_t, 65> bulk_words_by_level{};

    void clear() { *this = ShardAccount{}; }

    /// Mirror of Machine::charge into the shard.
    void charge(double c) {
        DBSP_REQUIRE(c >= 0.0);
        cost += c;
    }

    /// Mirror of Machine::note_bulk into the shard.
    void note_bulk(Addr deepest, std::uint64_t words) {
        ++bulk_ops;
        bulk_words += words;
        bulk_words_by_level[std::bit_width(deepest)] += words;
    }
};

class Machine {
public:
    /// A machine with \p capacity words of memory, all zero-initialized.
    Machine(AccessFunction f, std::uint64_t capacity);

    /// --- charged word accesses ---------------------------------------------
    /// read()/write() deliberately carry NO trace hook: they are the
    /// innermost few-cycle operations of every simulation loop, and even a
    /// never-taken branch on the sink pointer measurably slows the untraced
    /// harness (bench_micro). Per-word trace events are emitted by
    /// read_traced()/write_traced(), which charge identically (same delta,
    /// same fold order — the sink mirror stays bit-for-bit); the simulators
    /// route word traffic through them only when a sink is attached.
    Word read(Addr x);
    void write(Addr x, Word value);
    Word read_traced(Addr x);
    void write_traced(Addr x, Word value);

    /// --- charged bulk accesses ---------------------------------------------
    /// Read [x, x + out.size()) into \p out; cost-equivalent (bit for bit) to
    /// a read() loop in ascending address order.
    void read_range(Addr x, std::span<Word> out);

    /// Write \p values onto [x, x + values.size()); cost-equivalent to a
    /// write() loop in ascending address order.
    void write_range(Addr x, std::span<const Word> values);

    /// --- charged bulk operations -------------------------------------------
    /// Swap the disjoint word ranges [a, a+len) and [b, b+len). Each cell is
    /// read and written once: charges 2 * (sum f over both ranges).
    void swap_blocks(Addr a, Addr b, std::uint64_t len);

    /// Copy [src, src+len) onto [dst, dst+len) (ranges may not overlap).
    /// Charges sum f over source (reads) plus sum f over destination (writes).
    void copy_block(Addr src, Addr dst, std::uint64_t len);

    /// Charge the cost of touching every cell of [begin, end) once, without
    /// moving data (used for read-only scans whose values the caller already
    /// holds, e.g. re-reading a just-written buffer).
    void charge_range(Addr begin, Addr end);

    /// Charge \p c units of pure computation (unit-cost operations).
    void charge(double c);

    /// Charge exactly what swap_blocks(a, b, len) would charge — cost, word
    /// touches, bulk telemetry, and the trace block_op event — WITHOUT
    /// moving any data. Used by the parallel simulators: a pair of
    /// swap-in/swap-out moves nets to the identity on memory, so the rounds
    /// execute contexts in place and account the paper's movement cost here
    /// during the deterministic merge.
    void charge_swap_blocks(Addr a, Addr b, std::uint64_t len);

    /// Fold one shard's accumulators into the machine: the cost fold is the
    /// single `cost_ += account.cost` the merged trace mirror also performs
    /// (Sink::merge_replay), keeping the two bit-identical.
    void merge_shard(const ShardAccount& account);

    /// --- accounting --------------------------------------------------------
    double cost() const { return cost_; }
    void reset_cost() {
        cost_ = 0.0;
        words_touched_ = 0;
        if (trace_ != nullptr) trace_->reset_total();
    }

    /// Attach (or detach, with nullptr) a charge-trace sink. The machine does
    /// not own the sink. Bulk operations guard their (per-op, amortized) trace
    /// hook with one branch on this pointer; per-word events come only from
    /// read_traced()/write_traced(), so a detached machine pays no tracing
    /// overhead at all.
    void set_trace(trace::Sink* sink) { trace_ = sink; }
    trace::Sink* trace() const { return trace_; }

    /// Number of charged word touches (reads + writes, including every cell
    /// of the bulk operations). Host-throughput metric for bench_micro.
    std::uint64_t words_touched() const { return words_touched_; }

    std::uint64_t capacity() const { return table_->capacity(); }
    const model::CostTable& table() const { return *table_; }
    const AccessFunction& function() const { return table_->function(); }

    /// Uncharged raw access for test setup/verification only.
    std::span<Word> raw() { return memory_; }
    std::span<const Word> raw() const { return memory_; }

    /// Publish the accumulated word-touch/bulk-op telemetry to the global
    /// metrics registry and zero the local accumulators. Idempotent between
    /// accesses: a second call with nothing new accumulated publishes
    /// nothing, so a long-lived process (dbsp_serve) can flush after every
    /// request — making snapshots equal the sum of per-request counts — and
    /// a reused machine never double-counts at destruction. Accumulation
    /// uses plain per-machine members (see note_bulk in machine.cpp):
    /// per-op atomics would cost tens of percent on the bulk delivery path,
    /// whose ranges are often single message records.
    void publish_metrics();

    /// Publishes any telemetry not yet flushed via publish_metrics().
    ~Machine();

private:
    /// Telemetry accumulator for one bulk operation touching \p words words
    /// whose deepest (highest) address is \p deepest — the level that
    /// dominates the op's HMM cost. Three plain adds, no atomics.
    void note_bulk(Addr deepest, std::uint64_t words);

    std::shared_ptr<const model::CostTable> table_;
    std::vector<Word> memory_;
    double cost_ = 0.0;
    std::uint64_t words_touched_ = 0;
    trace::Sink* trace_ = nullptr;  ///< not owned; nullptr = tracing off
    std::uint64_t bulk_ops_ = 0;
    std::uint64_t bulk_words_ = 0;
    /// Words per log2 memory level (indexed by bit_width of the deepest
    /// address touched); mirrors report::Histogram's bucketing.
    std::array<std::uint64_t, 65> bulk_words_by_level_{};
};

}  // namespace dbsp::hmm
