file(REMOVE_RECURSE
  "libdbsp_util.a"
)
