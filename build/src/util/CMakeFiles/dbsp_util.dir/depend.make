# Empty dependencies file for dbsp_util.
# This may be replaced when dependencies are built.
