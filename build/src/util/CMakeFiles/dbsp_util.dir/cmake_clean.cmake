file(REMOVE_RECURSE
  "CMakeFiles/dbsp_util.dir/bits.cpp.o"
  "CMakeFiles/dbsp_util.dir/bits.cpp.o.d"
  "CMakeFiles/dbsp_util.dir/stats.cpp.o"
  "CMakeFiles/dbsp_util.dir/stats.cpp.o.d"
  "CMakeFiles/dbsp_util.dir/table.cpp.o"
  "CMakeFiles/dbsp_util.dir/table.cpp.o.d"
  "libdbsp_util.a"
  "libdbsp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
