file(REMOVE_RECURSE
  "CMakeFiles/dbsp_hmm.dir/fft.cpp.o"
  "CMakeFiles/dbsp_hmm.dir/fft.cpp.o.d"
  "CMakeFiles/dbsp_hmm.dir/machine.cpp.o"
  "CMakeFiles/dbsp_hmm.dir/machine.cpp.o.d"
  "CMakeFiles/dbsp_hmm.dir/matmul.cpp.o"
  "CMakeFiles/dbsp_hmm.dir/matmul.cpp.o.d"
  "CMakeFiles/dbsp_hmm.dir/primitives.cpp.o"
  "CMakeFiles/dbsp_hmm.dir/primitives.cpp.o.d"
  "libdbsp_hmm.a"
  "libdbsp_hmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsp_hmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
