# Empty compiler generated dependencies file for dbsp_hmm.
# This may be replaced when dependencies are built.
