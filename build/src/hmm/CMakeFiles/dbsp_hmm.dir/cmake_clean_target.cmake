file(REMOVE_RECURSE
  "libdbsp_hmm.a"
)
