
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hmm/fft.cpp" "src/hmm/CMakeFiles/dbsp_hmm.dir/fft.cpp.o" "gcc" "src/hmm/CMakeFiles/dbsp_hmm.dir/fft.cpp.o.d"
  "/root/repo/src/hmm/machine.cpp" "src/hmm/CMakeFiles/dbsp_hmm.dir/machine.cpp.o" "gcc" "src/hmm/CMakeFiles/dbsp_hmm.dir/machine.cpp.o.d"
  "/root/repo/src/hmm/matmul.cpp" "src/hmm/CMakeFiles/dbsp_hmm.dir/matmul.cpp.o" "gcc" "src/hmm/CMakeFiles/dbsp_hmm.dir/matmul.cpp.o.d"
  "/root/repo/src/hmm/primitives.cpp" "src/hmm/CMakeFiles/dbsp_hmm.dir/primitives.cpp.o" "gcc" "src/hmm/CMakeFiles/dbsp_hmm.dir/primitives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/dbsp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
