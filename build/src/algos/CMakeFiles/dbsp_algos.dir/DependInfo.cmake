
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/bitonic_sort.cpp" "src/algos/CMakeFiles/dbsp_algos.dir/bitonic_sort.cpp.o" "gcc" "src/algos/CMakeFiles/dbsp_algos.dir/bitonic_sort.cpp.o.d"
  "/root/repo/src/algos/collectives.cpp" "src/algos/CMakeFiles/dbsp_algos.dir/collectives.cpp.o" "gcc" "src/algos/CMakeFiles/dbsp_algos.dir/collectives.cpp.o.d"
  "/root/repo/src/algos/fft_direct.cpp" "src/algos/CMakeFiles/dbsp_algos.dir/fft_direct.cpp.o" "gcc" "src/algos/CMakeFiles/dbsp_algos.dir/fft_direct.cpp.o.d"
  "/root/repo/src/algos/fft_recursive.cpp" "src/algos/CMakeFiles/dbsp_algos.dir/fft_recursive.cpp.o" "gcc" "src/algos/CMakeFiles/dbsp_algos.dir/fft_recursive.cpp.o.d"
  "/root/repo/src/algos/matmul.cpp" "src/algos/CMakeFiles/dbsp_algos.dir/matmul.cpp.o" "gcc" "src/algos/CMakeFiles/dbsp_algos.dir/matmul.cpp.o.d"
  "/root/repo/src/algos/odd_even_sort.cpp" "src/algos/CMakeFiles/dbsp_algos.dir/odd_even_sort.cpp.o" "gcc" "src/algos/CMakeFiles/dbsp_algos.dir/odd_even_sort.cpp.o.d"
  "/root/repo/src/algos/permutation.cpp" "src/algos/CMakeFiles/dbsp_algos.dir/permutation.cpp.o" "gcc" "src/algos/CMakeFiles/dbsp_algos.dir/permutation.cpp.o.d"
  "/root/repo/src/algos/serial_reference.cpp" "src/algos/CMakeFiles/dbsp_algos.dir/serial_reference.cpp.o" "gcc" "src/algos/CMakeFiles/dbsp_algos.dir/serial_reference.cpp.o.d"
  "/root/repo/src/algos/transpose_program.cpp" "src/algos/CMakeFiles/dbsp_algos.dir/transpose_program.cpp.o" "gcc" "src/algos/CMakeFiles/dbsp_algos.dir/transpose_program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/dbsp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
