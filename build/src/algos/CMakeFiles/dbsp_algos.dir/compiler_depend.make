# Empty compiler generated dependencies file for dbsp_algos.
# This may be replaced when dependencies are built.
