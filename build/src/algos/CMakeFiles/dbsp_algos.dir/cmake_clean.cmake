file(REMOVE_RECURSE
  "CMakeFiles/dbsp_algos.dir/bitonic_sort.cpp.o"
  "CMakeFiles/dbsp_algos.dir/bitonic_sort.cpp.o.d"
  "CMakeFiles/dbsp_algos.dir/collectives.cpp.o"
  "CMakeFiles/dbsp_algos.dir/collectives.cpp.o.d"
  "CMakeFiles/dbsp_algos.dir/fft_direct.cpp.o"
  "CMakeFiles/dbsp_algos.dir/fft_direct.cpp.o.d"
  "CMakeFiles/dbsp_algos.dir/fft_recursive.cpp.o"
  "CMakeFiles/dbsp_algos.dir/fft_recursive.cpp.o.d"
  "CMakeFiles/dbsp_algos.dir/matmul.cpp.o"
  "CMakeFiles/dbsp_algos.dir/matmul.cpp.o.d"
  "CMakeFiles/dbsp_algos.dir/odd_even_sort.cpp.o"
  "CMakeFiles/dbsp_algos.dir/odd_even_sort.cpp.o.d"
  "CMakeFiles/dbsp_algos.dir/permutation.cpp.o"
  "CMakeFiles/dbsp_algos.dir/permutation.cpp.o.d"
  "CMakeFiles/dbsp_algos.dir/serial_reference.cpp.o"
  "CMakeFiles/dbsp_algos.dir/serial_reference.cpp.o.d"
  "CMakeFiles/dbsp_algos.dir/transpose_program.cpp.o"
  "CMakeFiles/dbsp_algos.dir/transpose_program.cpp.o.d"
  "libdbsp_algos.a"
  "libdbsp_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsp_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
