file(REMOVE_RECURSE
  "libdbsp_algos.a"
)
