file(REMOVE_RECURSE
  "CMakeFiles/dbsp_core.dir/bounds.cpp.o"
  "CMakeFiles/dbsp_core.dir/bounds.cpp.o.d"
  "CMakeFiles/dbsp_core.dir/bt_simulator.cpp.o"
  "CMakeFiles/dbsp_core.dir/bt_simulator.cpp.o.d"
  "CMakeFiles/dbsp_core.dir/hmm_simulator.cpp.o"
  "CMakeFiles/dbsp_core.dir/hmm_simulator.cpp.o.d"
  "CMakeFiles/dbsp_core.dir/naive_bt_simulator.cpp.o"
  "CMakeFiles/dbsp_core.dir/naive_bt_simulator.cpp.o.d"
  "CMakeFiles/dbsp_core.dir/naive_hmm_simulator.cpp.o"
  "CMakeFiles/dbsp_core.dir/naive_hmm_simulator.cpp.o.d"
  "CMakeFiles/dbsp_core.dir/self_simulator.cpp.o"
  "CMakeFiles/dbsp_core.dir/self_simulator.cpp.o.d"
  "CMakeFiles/dbsp_core.dir/smoothing.cpp.o"
  "CMakeFiles/dbsp_core.dir/smoothing.cpp.o.d"
  "libdbsp_core.a"
  "libdbsp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
