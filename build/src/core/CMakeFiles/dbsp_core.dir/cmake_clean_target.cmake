file(REMOVE_RECURSE
  "libdbsp_core.a"
)
