# Empty dependencies file for dbsp_core.
# This may be replaced when dependencies are built.
