
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bounds.cpp" "src/core/CMakeFiles/dbsp_core.dir/bounds.cpp.o" "gcc" "src/core/CMakeFiles/dbsp_core.dir/bounds.cpp.o.d"
  "/root/repo/src/core/bt_simulator.cpp" "src/core/CMakeFiles/dbsp_core.dir/bt_simulator.cpp.o" "gcc" "src/core/CMakeFiles/dbsp_core.dir/bt_simulator.cpp.o.d"
  "/root/repo/src/core/hmm_simulator.cpp" "src/core/CMakeFiles/dbsp_core.dir/hmm_simulator.cpp.o" "gcc" "src/core/CMakeFiles/dbsp_core.dir/hmm_simulator.cpp.o.d"
  "/root/repo/src/core/naive_bt_simulator.cpp" "src/core/CMakeFiles/dbsp_core.dir/naive_bt_simulator.cpp.o" "gcc" "src/core/CMakeFiles/dbsp_core.dir/naive_bt_simulator.cpp.o.d"
  "/root/repo/src/core/naive_hmm_simulator.cpp" "src/core/CMakeFiles/dbsp_core.dir/naive_hmm_simulator.cpp.o" "gcc" "src/core/CMakeFiles/dbsp_core.dir/naive_hmm_simulator.cpp.o.d"
  "/root/repo/src/core/self_simulator.cpp" "src/core/CMakeFiles/dbsp_core.dir/self_simulator.cpp.o" "gcc" "src/core/CMakeFiles/dbsp_core.dir/self_simulator.cpp.o.d"
  "/root/repo/src/core/smoothing.cpp" "src/core/CMakeFiles/dbsp_core.dir/smoothing.cpp.o" "gcc" "src/core/CMakeFiles/dbsp_core.dir/smoothing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/dbsp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hmm/CMakeFiles/dbsp_hmm.dir/DependInfo.cmake"
  "/root/repo/build/src/bt/CMakeFiles/dbsp_bt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
