
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bt/align.cpp" "src/bt/CMakeFiles/dbsp_bt.dir/align.cpp.o" "gcc" "src/bt/CMakeFiles/dbsp_bt.dir/align.cpp.o.d"
  "/root/repo/src/bt/fft.cpp" "src/bt/CMakeFiles/dbsp_bt.dir/fft.cpp.o" "gcc" "src/bt/CMakeFiles/dbsp_bt.dir/fft.cpp.o.d"
  "/root/repo/src/bt/machine.cpp" "src/bt/CMakeFiles/dbsp_bt.dir/machine.cpp.o" "gcc" "src/bt/CMakeFiles/dbsp_bt.dir/machine.cpp.o.d"
  "/root/repo/src/bt/primitives.cpp" "src/bt/CMakeFiles/dbsp_bt.dir/primitives.cpp.o" "gcc" "src/bt/CMakeFiles/dbsp_bt.dir/primitives.cpp.o.d"
  "/root/repo/src/bt/sort.cpp" "src/bt/CMakeFiles/dbsp_bt.dir/sort.cpp.o" "gcc" "src/bt/CMakeFiles/dbsp_bt.dir/sort.cpp.o.d"
  "/root/repo/src/bt/transpose.cpp" "src/bt/CMakeFiles/dbsp_bt.dir/transpose.cpp.o" "gcc" "src/bt/CMakeFiles/dbsp_bt.dir/transpose.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/dbsp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
