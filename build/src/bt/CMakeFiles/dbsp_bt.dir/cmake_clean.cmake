file(REMOVE_RECURSE
  "CMakeFiles/dbsp_bt.dir/align.cpp.o"
  "CMakeFiles/dbsp_bt.dir/align.cpp.o.d"
  "CMakeFiles/dbsp_bt.dir/fft.cpp.o"
  "CMakeFiles/dbsp_bt.dir/fft.cpp.o.d"
  "CMakeFiles/dbsp_bt.dir/machine.cpp.o"
  "CMakeFiles/dbsp_bt.dir/machine.cpp.o.d"
  "CMakeFiles/dbsp_bt.dir/primitives.cpp.o"
  "CMakeFiles/dbsp_bt.dir/primitives.cpp.o.d"
  "CMakeFiles/dbsp_bt.dir/sort.cpp.o"
  "CMakeFiles/dbsp_bt.dir/sort.cpp.o.d"
  "CMakeFiles/dbsp_bt.dir/transpose.cpp.o"
  "CMakeFiles/dbsp_bt.dir/transpose.cpp.o.d"
  "libdbsp_bt.a"
  "libdbsp_bt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsp_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
