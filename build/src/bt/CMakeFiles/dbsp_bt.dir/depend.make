# Empty dependencies file for dbsp_bt.
# This may be replaced when dependencies are built.
