file(REMOVE_RECURSE
  "libdbsp_bt.a"
)
