file(REMOVE_RECURSE
  "libdbsp_model.a"
)
