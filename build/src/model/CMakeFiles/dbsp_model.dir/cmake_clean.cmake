file(REMOVE_RECURSE
  "CMakeFiles/dbsp_model.dir/access_function.cpp.o"
  "CMakeFiles/dbsp_model.dir/access_function.cpp.o.d"
  "CMakeFiles/dbsp_model.dir/cost_table.cpp.o"
  "CMakeFiles/dbsp_model.dir/cost_table.cpp.o.d"
  "CMakeFiles/dbsp_model.dir/dbsp_machine.cpp.o"
  "CMakeFiles/dbsp_model.dir/dbsp_machine.cpp.o.d"
  "CMakeFiles/dbsp_model.dir/program.cpp.o"
  "CMakeFiles/dbsp_model.dir/program.cpp.o.d"
  "CMakeFiles/dbsp_model.dir/recorded_program.cpp.o"
  "CMakeFiles/dbsp_model.dir/recorded_program.cpp.o.d"
  "CMakeFiles/dbsp_model.dir/superstep_exec.cpp.o"
  "CMakeFiles/dbsp_model.dir/superstep_exec.cpp.o.d"
  "libdbsp_model.a"
  "libdbsp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
