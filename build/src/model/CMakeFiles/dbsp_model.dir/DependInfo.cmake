
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/access_function.cpp" "src/model/CMakeFiles/dbsp_model.dir/access_function.cpp.o" "gcc" "src/model/CMakeFiles/dbsp_model.dir/access_function.cpp.o.d"
  "/root/repo/src/model/cost_table.cpp" "src/model/CMakeFiles/dbsp_model.dir/cost_table.cpp.o" "gcc" "src/model/CMakeFiles/dbsp_model.dir/cost_table.cpp.o.d"
  "/root/repo/src/model/dbsp_machine.cpp" "src/model/CMakeFiles/dbsp_model.dir/dbsp_machine.cpp.o" "gcc" "src/model/CMakeFiles/dbsp_model.dir/dbsp_machine.cpp.o.d"
  "/root/repo/src/model/program.cpp" "src/model/CMakeFiles/dbsp_model.dir/program.cpp.o" "gcc" "src/model/CMakeFiles/dbsp_model.dir/program.cpp.o.d"
  "/root/repo/src/model/recorded_program.cpp" "src/model/CMakeFiles/dbsp_model.dir/recorded_program.cpp.o" "gcc" "src/model/CMakeFiles/dbsp_model.dir/recorded_program.cpp.o.d"
  "/root/repo/src/model/superstep_exec.cpp" "src/model/CMakeFiles/dbsp_model.dir/superstep_exec.cpp.o" "gcc" "src/model/CMakeFiles/dbsp_model.dir/superstep_exec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dbsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
