# Empty dependencies file for dbsp_model.
# This may be replaced when dependencies are built.
