# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.fft_pipeline "/root/repo/build/examples/fft_pipeline")
set_tests_properties(example.fft_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.sort_hierarchy "/root/repo/build/examples/sort_hierarchy")
set_tests_properties(example.sort_hierarchy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.brent_scaling "/root/repo/build/examples/brent_scaling")
set_tests_properties(example.brent_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
