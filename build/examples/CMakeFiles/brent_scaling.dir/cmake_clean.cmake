file(REMOVE_RECURSE
  "CMakeFiles/brent_scaling.dir/brent_scaling.cpp.o"
  "CMakeFiles/brent_scaling.dir/brent_scaling.cpp.o.d"
  "brent_scaling"
  "brent_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brent_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
