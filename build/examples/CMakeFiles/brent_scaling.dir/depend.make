# Empty dependencies file for brent_scaling.
# This may be replaced when dependencies are built.
