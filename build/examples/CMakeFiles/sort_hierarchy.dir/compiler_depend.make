# Empty compiler generated dependencies file for sort_hierarchy.
# This may be replaced when dependencies are built.
