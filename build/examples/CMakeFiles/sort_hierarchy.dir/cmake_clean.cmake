file(REMOVE_RECURSE
  "CMakeFiles/sort_hierarchy.dir/sort_hierarchy.cpp.o"
  "CMakeFiles/sort_hierarchy.dir/sort_hierarchy.cpp.o.d"
  "sort_hierarchy"
  "sort_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
