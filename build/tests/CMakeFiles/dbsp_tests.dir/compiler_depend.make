# Empty compiler generated dependencies file for dbsp_tests.
# This may be replaced when dependencies are built.
