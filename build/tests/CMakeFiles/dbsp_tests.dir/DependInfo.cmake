
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/access_function_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/access_function_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/access_function_test.cpp.o.d"
  "/root/repo/tests/algos_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/algos_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/algos_test.cpp.o.d"
  "/root/repo/tests/align_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/align_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/align_test.cpp.o.d"
  "/root/repo/tests/bounds_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/bounds_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/bounds_test.cpp.o.d"
  "/root/repo/tests/bt_machine_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/bt_machine_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/bt_machine_test.cpp.o.d"
  "/root/repo/tests/bt_primitives_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/bt_primitives_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/bt_primitives_test.cpp.o.d"
  "/root/repo/tests/bt_simulator_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/bt_simulator_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/bt_simulator_test.cpp.o.d"
  "/root/repo/tests/cross_executor_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/cross_executor_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/cross_executor_test.cpp.o.d"
  "/root/repo/tests/dbsp_machine_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/dbsp_machine_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/dbsp_machine_test.cpp.o.d"
  "/root/repo/tests/edge_cases_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/edge_cases_test.cpp.o.d"
  "/root/repo/tests/hmm_machine_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/hmm_machine_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/hmm_machine_test.cpp.o.d"
  "/root/repo/tests/hmm_simulator_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/hmm_simulator_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/hmm_simulator_test.cpp.o.d"
  "/root/repo/tests/model_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/model_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/model_test.cpp.o.d"
  "/root/repo/tests/native_fft_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/native_fft_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/native_fft_test.cpp.o.d"
  "/root/repo/tests/native_matmul_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/native_matmul_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/native_matmul_test.cpp.o.d"
  "/root/repo/tests/odd_even_sort_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/odd_even_sort_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/odd_even_sort_test.cpp.o.d"
  "/root/repo/tests/recorded_program_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/recorded_program_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/recorded_program_test.cpp.o.d"
  "/root/repo/tests/self_simulator_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/self_simulator_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/self_simulator_test.cpp.o.d"
  "/root/repo/tests/smoothing_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/smoothing_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/smoothing_test.cpp.o.d"
  "/root/repo/tests/staged_stream_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/staged_stream_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/staged_stream_test.cpp.o.d"
  "/root/repo/tests/transpose_program_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/transpose_program_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/transpose_program_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/dbsp_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/dbsp_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dbsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/dbsp_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dbsp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hmm/CMakeFiles/dbsp_hmm.dir/DependInfo.cmake"
  "/root/repo/build/src/bt/CMakeFiles/dbsp_bt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
