# Empty compiler generated dependencies file for bench_e1_hmm_touching.
# This may be replaced when dependencies are built.
