file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_hmm_touching.dir/bench_e1_hmm_touching.cpp.o"
  "CMakeFiles/bench_e1_hmm_touching.dir/bench_e1_hmm_touching.cpp.o.d"
  "bench_e1_hmm_touching"
  "bench_e1_hmm_touching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_hmm_touching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
