file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_brent.dir/bench_e7_brent.cpp.o"
  "CMakeFiles/bench_e7_brent.dir/bench_e7_brent.cpp.o.d"
  "bench_e7_brent"
  "bench_e7_brent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_brent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
