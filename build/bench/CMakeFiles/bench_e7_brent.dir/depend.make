# Empty dependencies file for bench_e7_brent.
# This may be replaced when dependencies are built.
