# Empty dependencies file for bench_e8_bt_simulation.
# This may be replaced when dependencies are built.
