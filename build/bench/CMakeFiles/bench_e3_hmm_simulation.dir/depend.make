# Empty dependencies file for bench_e3_hmm_simulation.
# This may be replaced when dependencies are built.
