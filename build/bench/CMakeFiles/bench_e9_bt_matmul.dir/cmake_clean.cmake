file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_bt_matmul.dir/bench_e9_bt_matmul.cpp.o"
  "CMakeFiles/bench_e9_bt_matmul.dir/bench_e9_bt_matmul.cpp.o.d"
  "bench_e9_bt_matmul"
  "bench_e9_bt_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_bt_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
