# Empty dependencies file for bench_e9_bt_matmul.
# This may be replaced when dependencies are built.
