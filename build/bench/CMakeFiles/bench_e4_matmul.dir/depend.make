# Empty dependencies file for bench_e4_matmul.
# This may be replaced when dependencies are built.
