file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_matmul.dir/bench_e4_matmul.cpp.o"
  "CMakeFiles/bench_e4_matmul.dir/bench_e4_matmul.cpp.o.d"
  "bench_e4_matmul"
  "bench_e4_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
