file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_rational_perm.dir/bench_e11_rational_perm.cpp.o"
  "CMakeFiles/bench_e11_rational_perm.dir/bench_e11_rational_perm.cpp.o.d"
  "bench_e11_rational_perm"
  "bench_e11_rational_perm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_rational_perm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
