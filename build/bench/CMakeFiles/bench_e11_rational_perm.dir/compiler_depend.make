# Empty compiler generated dependencies file for bench_e11_rational_perm.
# This may be replaced when dependencies are built.
