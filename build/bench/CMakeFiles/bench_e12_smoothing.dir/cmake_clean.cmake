file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_smoothing.dir/bench_e12_smoothing.cpp.o"
  "CMakeFiles/bench_e12_smoothing.dir/bench_e12_smoothing.cpp.o.d"
  "bench_e12_smoothing"
  "bench_e12_smoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
