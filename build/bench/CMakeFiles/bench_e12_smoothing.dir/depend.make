# Empty dependencies file for bench_e12_smoothing.
# This may be replaced when dependencies are built.
