# Empty dependencies file for bench_e13_locality_ablation.
# This may be replaced when dependencies are built.
