file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_bt_fft.dir/bench_e10_bt_fft.cpp.o"
  "CMakeFiles/bench_e10_bt_fft.dir/bench_e10_bt_fft.cpp.o.d"
  "bench_e10_bt_fft"
  "bench_e10_bt_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_bt_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
