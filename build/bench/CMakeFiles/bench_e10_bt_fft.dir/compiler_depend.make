# Empty compiler generated dependencies file for bench_e10_bt_fft.
# This may be replaced when dependencies are built.
