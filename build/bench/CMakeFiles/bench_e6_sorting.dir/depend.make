# Empty dependencies file for bench_e6_sorting.
# This may be replaced when dependencies are built.
