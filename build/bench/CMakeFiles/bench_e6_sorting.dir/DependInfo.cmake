
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e6_sorting.cpp" "bench/CMakeFiles/bench_e6_sorting.dir/bench_e6_sorting.cpp.o" "gcc" "bench/CMakeFiles/bench_e6_sorting.dir/bench_e6_sorting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dbsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/dbsp_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dbsp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hmm/CMakeFiles/dbsp_hmm.dir/DependInfo.cmake"
  "/root/repo/build/src/bt/CMakeFiles/dbsp_bt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
