file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_sorting.dir/bench_e6_sorting.cpp.o"
  "CMakeFiles/bench_e6_sorting.dir/bench_e6_sorting.cpp.o.d"
  "bench_e6_sorting"
  "bench_e6_sorting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
