# Empty dependencies file for bench_e2_bt_touching.
# This may be replaced when dependencies are built.
