file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_bt_touching.dir/bench_e2_bt_touching.cpp.o"
  "CMakeFiles/bench_e2_bt_touching.dir/bench_e2_bt_touching.cpp.o.d"
  "bench_e2_bt_touching"
  "bench_e2_bt_touching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_bt_touching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
