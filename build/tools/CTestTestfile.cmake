# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool.explore_hmm "/root/repo/build/tools/dbsp_explore" "--program" "bitonic" "--v" "64" "--f" "x^0.5" "--model" "hmm")
set_tests_properties(tool.explore_hmm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool.explore_bt_rational "/root/repo/build/tools/dbsp_explore" "--program" "fft-rec" "--v" "16" "--f" "x^0.35" "--model" "bt" "--rational")
set_tests_properties(tool.explore_bt_rational PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool.explore_profile "/root/repo/build/tools/dbsp_explore" "--program" "matmul" "--v" "64" "--f" "log" "--profile" "--model" "none")
set_tests_properties(tool.explore_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
