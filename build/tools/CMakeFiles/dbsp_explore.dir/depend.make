# Empty dependencies file for dbsp_explore.
# This may be replaced when dependencies are built.
