file(REMOVE_RECURSE
  "CMakeFiles/dbsp_explore.dir/dbsp_explore.cpp.o"
  "CMakeFiles/dbsp_explore.dir/dbsp_explore.cpp.o.d"
  "dbsp_explore"
  "dbsp_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsp_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
