/// Experiment E1 — Fact 1: touching the first n cells of an f(x)-HMM costs
/// Theta(n f(n)). We scan memories of growing size under the case-study
/// access functions and compare the measured (exact) cost with n * f(n).

#include <cmath>

#include "bench/common.hpp"
#include "core/bounds.hpp"
#include "hmm/machine.hpp"
#include "hmm/primitives.hpp"

namespace {

struct Point {
    dbsp::model::AccessFunction f;
    std::uint64_t n;
};

struct Row {
    double cost;
    double bound;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace dbsp;
    bench::Experiment ex("e1", "E1  HMM touching (Fact 1)",
                         "time to access the first n cells of f(x)-HMM is Theta(n f(n))");
    if (!ex.parse_args(argc, argv)) return 2;

    const auto functions = bench::case_study_functions();
    std::vector<Point> points;
    for (const auto& f : functions) {
        for (std::uint64_t n = 1 << 10; n <= (1 << 22); n <<= 2) {
            points.push_back({f, n});
        }
    }
    const auto rows = bench::parallel_sweep(points, [](const Point& pt) {
        hmm::Machine m(pt.f, pt.n);
        m.reset_cost();
        hmm::touch_all(m, pt.n);
        return Row{m.cost(), core::fact1_bound(pt.f, pt.n)};
    });

    std::size_t idx = 0;
    for (const auto& f : functions) {
        bench::section("f(x) = " + f.name());
        Table table({"n", "measured cost", "n*f(n)", "ratio"});
        std::vector<double> ns, costs, ratios;
        for (std::uint64_t n = 1 << 10; n <= (1 << 22); n <<= 2) {
            const Row& r = rows[idx++];
            table.add_row_values({static_cast<double>(n), r.cost, r.bound, r.cost / r.bound});
            ns.push_back(static_cast<double>(n));
            costs.push_back(r.cost);
            ratios.push_back(r.cost / r.bound);
        }
        table.print();
        ex.check_band("measured / (n f(n)) [" + f.name() + "]", ratios, 2.0);
        ex.check_slope(
            "touching cost vs n [" + f.name() + "]", ns, costs,
            f.name() == "log x" ? 1.0 : 1.0 + (f.name() == "x^0.35" ? 0.35 : 0.50),
            f.name() == "log x" ? 0.20 : 0.05);
    }
    return ex.finish();
}
