/// Experiment E2 — Fact 2: the touching problem on f(x)-BT requires
/// Theta(n f*(n)) — n log log n for f = x^alpha and n log* n for f = log x —
/// versus the HMM's Theta(n f(n)). We run the recursive block-transfer
/// touching algorithm and tabulate both models side by side; the HMM/BT gap
/// is the "added power introduced by block transfer" the paper points at.

#include <cmath>

#include "bench/common.hpp"
#include "bt/machine.hpp"
#include "bt/primitives.hpp"
#include "core/bounds.hpp"

namespace {

struct Point {
    dbsp::model::AccessFunction f;
    std::uint64_t n;
};

struct Row {
    double bt_cost;
    double bound;
    double hmm_cost;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace dbsp;
    bench::Experiment ex("e2", "E2  BT touching (Fact 2)",
                         "touching on f(x)-BT costs Theta(n f*(n)); block transfer hides "
                         "nearly all of the HMM's Theta(n f(n))");
    if (!ex.parse_args(argc, argv)) return 2;

    const auto functions = bench::case_study_functions();
    std::vector<Point> points;
    for (const auto& f : functions) {
        for (std::uint64_t n = 1 << 12; n <= (1 << 22); n <<= 2) {
            points.push_back({f, n});
        }
    }
    const auto rows = bench::parallel_sweep(points, [](const Point& pt) {
        bt::Machine m(pt.f, 2 * pt.n);
        m.reset_cost();
        bt::touch_region(m, pt.n, pt.n);
        return Row{m.cost(), core::fact2_bound(pt.f, pt.n),
                   core::fact1_bound(pt.f, pt.n)};
    });

    std::size_t idx = 0;
    for (const auto& f : functions) {
        bench::section("f(x) = " + f.name());
        Table table({"n", "BT cost", "n*f*(n)", "BT ratio", "HMM cost", "HMM/BT"});
        std::vector<double> ratios, gaps;
        for (std::uint64_t n = 1 << 12; n <= (1 << 22); n <<= 2) {
            const Row& r = rows[idx++];
            table.add_row_values({static_cast<double>(n), r.bt_cost, r.bound,
                                  r.bt_cost / r.bound, r.hmm_cost, r.hmm_cost / r.bt_cost});
            ratios.push_back(r.bt_cost / r.bound);
            gaps.push_back(r.hmm_cost / r.bt_cost);
        }
        table.print();
        ex.check_band("BT measured / (n f*(n)) [" + f.name() + "]", ratios, 2.5);
        std::printf("%-44s grows from %.1fx to %.1fx\n", "HMM/BT touching gap",
                    gaps.front(), gaps.back());
        // Fact 2's point: block transfer hides nearly all of the HMM's
        // hierarchy cost, so the HMM/BT gap must widen across the sweep.
        ex.check_min("HMM/BT touching gap growth [" + f.name() + "]",
                     gaps.back() / gaps.front(), 1.10);
    }
    return ex.finish();
}
