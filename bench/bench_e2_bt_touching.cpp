/// Experiment E2 — Fact 2: the touching problem on f(x)-BT requires
/// Theta(n f*(n)) — n log log n for f = x^alpha and n log* n for f = log x —
/// versus the HMM's Theta(n f(n)). We run the recursive block-transfer
/// touching algorithm and tabulate both models side by side; the HMM/BT gap
/// is the "added power introduced by block transfer" the paper points at.

#include <cmath>

#include "bench/common.hpp"
#include "bt/machine.hpp"
#include "bt/primitives.hpp"
#include "core/bounds.hpp"

int main() {
    using namespace dbsp;
    bench::banner("E2  BT touching (Fact 2)",
                  "touching on f(x)-BT costs Theta(n f*(n)); block transfer hides "
                  "nearly all of the HMM's Theta(n f(n))");

    for (const auto& f : bench::case_study_functions()) {
        bench::section("f(x) = " + f.name());
        Table table({"n", "BT cost", "n*f*(n)", "BT ratio", "HMM cost", "HMM/BT"});
        std::vector<double> ratios, gaps;
        for (std::uint64_t n = 1 << 12; n <= (1 << 22); n <<= 2) {
            bt::Machine m(f, 2 * n);
            m.reset_cost();
            bt::touch_region(m, n, n);
            const double bt_cost = m.cost();
            const double bound = core::fact2_bound(f, n);
            const double hmm_cost = core::fact1_bound(f, n);
            table.add_row_values({static_cast<double>(n), bt_cost, bound, bt_cost / bound,
                                  hmm_cost, hmm_cost / bt_cost});
            ratios.push_back(bt_cost / bound);
            gaps.push_back(hmm_cost / bt_cost);
        }
        table.print();
        bench::report_band("BT measured / (n f*(n))", ratios);
        std::printf("%-44s grows from %.1fx to %.1fx\n", "HMM/BT touching gap",
                    gaps.front(), gaps.back());
    }
    return 0;
}
