/// Experiment E9 — Section 5.3, matrix multiplication on BT: the n-MM D-BSP
/// algorithm (2^i supersteps of label 2i, constant local work each) simulates
/// on f(x)-BT in optimal O(n^(3/2)) time via Theorem 12, while the trivial
/// step-by-step port pays at least a touching-flavoured omega(1) factor per
/// superstep — its total grows strictly faster, and the gap widens with n.

#include "algos/matmul.hpp"
#include <cmath>

#include "bench/common.hpp"
#include "core/bt_simulator.hpp"
#include "core/naive_bt_simulator.hpp"
#include "core/smoothing.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
    using namespace dbsp;
    bench::Experiment ex("e9", "E9  Matrix multiplication on BT (Section 5.3)",
                         "simulated n-MM is optimal O(n^(3/2)) on f(x)-BT; the trivial "
                         "step-by-step simulation pays an extra unbounded factor");
    if (!ex.parse_args(argc, argv)) return 2;

    for (const auto& f :
         {model::AccessFunction::polynomial(0.5), model::AccessFunction::logarithmic()}) {
        bench::section("f(x) = " + f.name());
        Table table({"n", "BT sim", "n^1.5", "ratio", "naive sim", "naive/smart"});
        std::vector<double> ratios, gaps, ns;
        for (std::uint64_t n = 1 << 4; n <= (1 << 12); n <<= 2) {
            SplitMix64 rng(n);
            std::vector<model::Word> a(n), b(n);
            for (auto& x : a) x = rng.next_below(1 << 20);
            for (auto& x : b) x = rng.next_below(1 << 20);

            algo::MatMulProgram prog(a, b);
            auto smoothed =
                core::smooth(prog, core::bt_label_set(f, prog.context_words(), n));
            const auto smart = core::BtSimulator(f).simulate(*smoothed);

            algo::MatMulProgram naive_prog(a, b);
            const auto naive = core::NaiveBtSimulator(f).simulate(naive_prog);

            const double shape = std::pow(static_cast<double>(n), 1.5);
            table.add_row_values({static_cast<double>(n), smart.bt_cost, shape,
                                  smart.bt_cost / shape, naive.bt_cost,
                                  naive.bt_cost / smart.bt_cost});
            ratios.push_back(smart.bt_cost / shape);
            gaps.push_back(naive.bt_cost / smart.bt_cost);
            ns.push_back(static_cast<double>(n));
        }
        table.print();
        ex.check_band("BT sim / n^(3/2) [" + f.name() + "]", ratios, 2.6);
        const auto fit = fit_loglog(ns, gaps);
        ex.series("naive/smart gap vs n [" + f.name() + "]", ns, gaps);
        ex.check_min("naive/smart gap growth exponent [" + f.name() + "]", fit.slope, 0.03);
        if (fit.slope > 0.01 && gaps.back() < 1.0) {
            std::printf("(gap exponent %.2f > 0: the trivial port diverges; "
                        "extrapolated crossover at n ~ 2^%.0f)\n", fit.slope,
                        std::log2(ns.back()) - std::log2(gaps.back()) / fit.slope);
        } else if (gaps.back() >= 1.0) {
            std::printf("(the locality-aware simulation wins outright from the "
                        "crossover row onward)\n");
        }
    }
    return ex.finish();
}
