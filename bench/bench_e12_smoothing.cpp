/// Experiment E12 — the L-smoothing ablation (Sections 3 and 5.2.2): making
/// a program L-smooth (label upgrades + dummy supersteps) changes the
/// simulation cost only by a constant factor — polynomial in the
/// (2,c)-uniformity constant — while enabling the scheduling machinery.
/// We measure, per access function: the transformation counts, the simulated
/// cost under the tuned label set vs the trivial full set {0..log v}, and the
/// dependence on the decay parameter c2.

#include "algos/bitonic_sort.hpp"
#include "algos/permutation.hpp"
#include <cmath>

#include "bench/common.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
    using namespace dbsp;
    bench::Experiment ex("e12", "E12 L-smoothing overhead ablation (Sections 3, 5.2.2)",
                         "smoothing costs only a constant factor (polynomial in the "
                         "(2,c)-uniformity constant c)");
    if (!ex.parse_args(argc, argv)) return 2;

    const std::uint64_t v = 1 << 10;
    SplitMix64 seed_rng(5);
    std::vector<unsigned> labels;
    for (unsigned i = 0; i < 24; ++i) {
        labels.push_back(static_cast<unsigned>(seed_rng.next_below(ilog2(v) + 1)));
    }

    for (const auto& f : bench::case_study_functions()) {
        bench::section("f(x) = " + f.name() + ", v = 1024, random 24-superstep program");
        Table table({"label set", "|L|", "upgraded", "dummies", "HMM sim cost"});
        const auto run_with = [&](const std::string& name,
                                  const std::vector<unsigned>& lset) {
            algo::RandomRoutingProgram prog(v, labels, 77);
            core::SmoothingStats stats;
            auto smoothed = core::smooth(prog, lset, &stats);
            const auto res = core::HmmSimulator(f).simulate(*smoothed);
            table.add_row({name, Table::fmt(static_cast<double>(lset.size())),
                           Table::fmt(static_cast<double>(stats.upgraded)),
                           Table::fmt(static_cast<double>(stats.dummies)),
                           Table::fmt(res.hmm_cost)});
            return res.hmm_cost;
        };
        const double tuned =
            run_with("HMM set (c2=0.5)", core::hmm_label_set(f, 10, v, 0.5));
        const double c25 = run_with("HMM set (c2=0.25)", core::hmm_label_set(f, 10, v, 0.25));
        const double c75 = run_with("HMM set (c2=0.75)", core::hmm_label_set(f, 10, v, 0.75));
        const double full = run_with("full {0..log v}", core::full_label_set(v));
        table.print();
        std::printf("tuned-set cost / full-set cost = %.3f (both are Theta(bound); the "
                    "tuned set trades dummies for upgrades)\n", tuned / full);
        // Constant-factor claim: every label-set choice lands within a small
        // band of every other on the same program.
        ex.check_band("smoothing cost across label sets [" + f.name() + "]",
                      {tuned, c25, c75, full}, 3.0);
    }
    return ex.finish();
}
