#pragma once

/// \file common.hpp
/// Shared helpers for the experiment binaries. Each bench_eNN binary
/// reproduces one claim of the paper (see DESIGN.md §6) and prints
/// paper-style tables: one row per parameter point, columns for the measured
/// simulated cost, the closed-form prediction, and their ratio. A ratio
/// column that stays within a constant band across the sweep is the
/// empirical signature of the claimed Theta()/O() bound.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "model/access_function.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dbsp::bench {

/// Print the experiment banner.
inline void banner(const char* id, const char* claim) {
    std::printf("==============================================================\n");
    std::printf("%s\n", id);
    std::printf("Paper claim: %s\n", claim);
    std::printf("==============================================================\n");
}

inline void section(const std::string& text) {
    std::printf("\n--- %s ---\n", text.c_str());
}

/// Print a fitted growth exponent next to its predicted value.
inline void report_slope(const std::string& what, const std::vector<double>& xs,
                         const std::vector<double>& ys, double predicted) {
    const auto fit = fit_loglog(xs, ys);
    std::printf("%-44s measured exponent %.3f (predicted %.3f, R^2 %.4f)\n",
                what.c_str(), fit.slope, predicted, fit.r_squared);
}

/// Print a ratio-band summary: Theta() bounds show as a bounded spread.
inline void report_band(const std::string& what, const std::vector<double>& ratios) {
    std::printf("%-44s ratio band [%.3f, %.3f], spread %.2fx\n", what.c_str(),
                *std::min_element(ratios.begin(), ratios.end()),
                *std::max_element(ratios.begin(), ratios.end()), spread(ratios));
}

/// Evaluate `fn` over every sweep point concurrently and return the results
/// in input order. Each point is an independent simulation (its own machine,
/// its own cost tables via the shared cache), so the only cross-thread state
/// is the mutex-guarded CostTableCache. Output stays deterministic because
/// the caller prints from the ordered result vector, never from the workers.
template <typename Point, typename Fn>
auto parallel_sweep(const std::vector<Point>& points, Fn&& fn)
    -> std::vector<decltype(fn(points[0]))> {
    using Result = decltype(fn(points[0]));
    std::vector<Result> results(points.size());
    util::parallel_for(points.size(),
                       [&](std::size_t i) { results[i] = fn(points[i]); });
    return results;
}

/// The paper's case-study access functions.
inline std::vector<model::AccessFunction> case_study_functions() {
    return {model::AccessFunction::polynomial(0.35), model::AccessFunction::polynomial(0.5),
            model::AccessFunction::logarithmic()};
}

}  // namespace dbsp::bench
