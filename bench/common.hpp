#pragma once

/// \file common.hpp
/// Shared harness for the experiment binaries. Each bench_eNN binary
/// reproduces one claim of the paper (see DESIGN.md §6) and drives one
/// bench::Experiment: it prints the paper-style tables (one row per sweep
/// point, columns for the measured simulated cost, the closed-form
/// prediction, and their ratio) AND records every comparison as a
/// machine-checkable report::Check with a declared tolerance. finish()
/// prints the verdict summary and, when the binary was invoked with
/// `--json FILE`, writes the full ExperimentResult artifact (provenance
/// envelope + measured series + checks + metrics snapshot) for
/// tools/dbsp_report to merge and gate.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "locality/sink.hpp"
#include "model/access_function.hpp"
#include "report/experiment.hpp"
#include "report/trace_bundle.hpp"
#include "trace/sink.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dbsp::bench {

inline void section(const std::string& text) {
    std::printf("\n--- %s ---\n", text.c_str());
}

/// One experiment run: console reporting + conformance recording.
class Experiment {
public:
    Experiment(std::string id, std::string title, std::string claim) {
        result_.id = std::move(id);
        result_.title = std::move(title);
        result_.claim = std::move(claim);
        std::printf("==============================================================\n");
        std::printf("%s\n", result_.title.c_str());
        std::printf("Paper claim: %s\n", result_.claim.c_str());
        std::printf("==============================================================\n");
    }

    /// Accept `--json FILE` (write the artifact there). Returns false after
    /// printing usage on anything unrecognized; the caller should exit 2.
    bool parse_args(int argc, char** argv) {
        for (int i = 1; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg == "--json" && i + 1 < argc) {
                json_path_ = argv[++i];
            } else {
                std::fprintf(stderr, "usage: %s [--json FILE]\n", argv[0]);
                return false;
            }
        }
        return true;
    }

    /// Run \p fn, recording its wall time and the worker count it ran on as
    /// a provenance leg (written into the artifact's envelope by finish()).
    /// Model costs stay bit-identical at every thread count, so the legs are
    /// the only place the artifact reflects parallel execution at all.
    template <typename Fn>
    auto timed_leg(const std::string& name, Fn&& fn) {
        const auto start = std::chrono::steady_clock::now();
        if constexpr (std::is_void_v<decltype(fn())>) {
            fn();
            record_leg(name, start);
        } else {
            auto value = fn();
            record_leg(name, start);
            return value;
        }
    }

    /// Record a raw measured series in the artifact (the numbers behind the
    /// fitted checks, so a reviewer can re-fit offline).
    void series(const std::string& name, const std::vector<double>& xs,
                const std::vector<double>& ys) {
        result_.series.push_back({name, xs, ys});
    }

    /// Fit log(ys) vs log(xs) and check the growth exponent against the
    /// theorem's closed-form value: |slope - predicted| <= tolerance.
    /// Also records the series under the check's label. Returns the fit.
    LogLogFit check_slope(const std::string& label, const std::vector<double>& xs,
                          const std::vector<double>& ys, double predicted,
                          double tolerance) {
        const LogLogFit fit = fit_loglog(xs, ys);
        report::Check c;
        c.label = label;
        c.id = report::ExperimentResult::slugify(label);
        c.kind = "exponent";
        c.measured = fit.slope;
        c.predicted = predicted;
        c.tolerance = tolerance;
        c.r_squared = fit.r_squared;
        c.max_residual = fit.max_residual;
        c.pass = report::Check::evaluate(c.kind, c.measured, c.predicted, c.tolerance);
        std::printf("%-44s measured exponent %.3f (predicted %.3f +- %.2f, R^2 %.4f) [%s]\n",
                    label.c_str(), fit.slope, predicted, tolerance, fit.r_squared,
                    c.pass ? "pass" : "FAIL");
        series(label, xs, ys);
        push(c);
        return fit;
    }

    /// Check that a measured/predicted ratio series stays within a constant
    /// band: spread(ratios) <= max_spread — the empirical signature of a
    /// Theta() bound.
    double check_band(const std::string& label, const std::vector<double>& ratios,
                      double max_spread) {
        const double s = spread(ratios);
        report::Check c;
        c.label = label;
        c.id = report::ExperimentResult::slugify(label);
        c.kind = "band";
        c.measured = s;
        c.predicted = 1.0;
        c.tolerance = max_spread;
        c.pass = report::Check::evaluate(c.kind, c.measured, c.predicted, c.tolerance);
        std::printf("%-44s ratio band [%.3f, %.3f], spread %.2fx (allowed %.2fx) [%s]\n",
                    label.c_str(), *std::min_element(ratios.begin(), ratios.end()),
                    *std::max_element(ratios.begin(), ratios.end()), s, max_spread,
                    c.pass ? "pass" : "FAIL");
        push(c);
        return s;
    }

    /// Check measured >= floor_value (e.g. a separation the paper says grows).
    /// `drift_tolerance`, when non-zero, does not affect this verdict — it is
    /// recorded in the artifact and read by the regression gate as the
    /// allowed *absolute* drift of the measured value vs the committed
    /// baseline, replacing the default relative-drift rule. Declare it on
    /// checks whose measured value is exact but fold-order sensitive (e.g.
    /// locality scores, whose last decimals move when an engine change
    /// regroups the identical event stream).
    bool check_min(const std::string& label, double measured, double floor_value,
                   double drift_tolerance = 0.0) {
        report::Check c;
        c.label = label;
        c.id = report::ExperimentResult::slugify(label);
        c.kind = "min";
        c.measured = measured;
        c.predicted = floor_value;
        c.tolerance = drift_tolerance;
        c.pass = report::Check::evaluate(c.kind, measured, floor_value, 0.0);
        std::printf("%-44s measured %.3f (>= %.3f required) [%s]\n", label.c_str(),
                    measured, floor_value, c.pass ? "pass" : "FAIL");
        push(c);
        return c.pass;
    }

    /// Check measured <= ceiling_value (e.g. an overhead the paper bounds).
    /// `drift_tolerance` as in check_min.
    bool check_max(const std::string& label, double measured, double ceiling_value,
                   double drift_tolerance = 0.0) {
        report::Check c;
        c.label = label;
        c.id = report::ExperimentResult::slugify(label);
        c.kind = "max";
        c.measured = measured;
        c.predicted = ceiling_value;
        c.tolerance = drift_tolerance;
        c.pass = report::Check::evaluate(c.kind, measured, ceiling_value, 0.0);
        std::printf("%-44s measured %.3f (<= %.3f required) [%s]\n", label.c_str(),
                    measured, ceiling_value, c.pass ? "pass" : "FAIL");
        push(c);
        return c.pass;
    }

    /// Record a check whose measurement is unavailable on this host (e.g.
    /// hardware counters denied) as *waived*: pass is forced true, the
    /// reason is kept in the artifact, and the regression gate skips drift
    /// comparison whenever either side of a baseline pair is waived. Use the
    /// same label as the measured variant so baselines from counter-enabled
    /// and counter-less machines line up check-for-check.
    void check_waived(const std::string& label, const std::string& kind,
                      double predicted, const std::string& reason,
                      double drift_tolerance = 0.0) {
        report::Check c;
        c.label = label;
        c.id = report::ExperimentResult::slugify(label);
        c.kind = kind;
        c.measured = 0.0;
        c.predicted = predicted;
        c.tolerance = drift_tolerance;
        c.pass = true;
        c.waived = true;
        c.waive_reason = reason;
        std::printf("%-44s [waived: %s]\n", label.c_str(), reason.c_str());
        push(c);
    }

    /// Print the verdict summary; write the JSON artifact when requested.
    /// Returns the process exit code: 0 all checks pass, 1 a check failed,
    /// 2 the artifact could not be written.
    int finish() {
        std::size_t passed = 0;
        for (const auto& c : result_.checks) passed += c.pass ? 1 : 0;
        std::printf("\n%s: %zu/%zu checks pass -> %s\n", result_.id.c_str(), passed,
                    result_.checks.size(), result_.pass() ? "PASS" : "FAIL");
        if (!json_path_.empty()) {
            auto prov = report::Provenance::collect();
            prov.legs = legs_;
            std::string error;
            if (!result_.to_json(prov, true).save_file(json_path_, &error)) {
                std::fprintf(stderr, "%s: cannot write %s: %s\n", result_.id.c_str(),
                             json_path_.c_str(), error.c_str());
                return 2;
            }
            std::printf("wrote %s\n", json_path_.c_str());
        }
        return result_.pass() ? 0 : 1;
    }

    const report::ExperimentResult& result() const { return result_; }

private:
    void record_leg(const std::string& name,
                    std::chrono::steady_clock::time_point start) {
        report::ProvenanceLeg leg;
        leg.name = name;
        leg.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        leg.threads = util::default_threads();
        // stderr, not stdout: the tables on stdout are byte-identical across
        // thread counts (the documented determinism check diffs them); wall
        // seconds are not.
        std::fprintf(stderr, "[leg] %-40s %.3fs on %llu thread(s)\n", name.c_str(),
                     leg.wall_seconds, static_cast<unsigned long long>(leg.threads));
        legs_.push_back(std::move(leg));
    }

    void push(report::Check c) {
        for (const auto& existing : result_.checks) {
            if (existing.id == c.id) {
                std::fprintf(stderr, "%s: duplicate check id \"%s\"\n", result_.id.c_str(),
                             c.id.c_str());
                std::abort();
            }
        }
        result_.checks.push_back(std::move(c));
    }

    report::ExperimentResult result_;
    std::string json_path_;
    std::vector<report::ProvenanceLeg> legs_;
};

/// Evaluate `fn` over every sweep point concurrently and return the results
/// in input order. Each point is an independent simulation (its own machine,
/// its own cost tables via the shared cache), so the only cross-thread state
/// is the mutex-guarded CostTableCache. Output stays deterministic because
/// the caller prints from the ordered result vector, never from the workers.
template <typename Point, typename Fn>
auto parallel_sweep(const std::vector<Point>& points, Fn&& fn)
    -> std::vector<decltype(fn(points[0]))> {
    using Result = decltype(fn(points[0]));
    std::vector<Result> results(points.size());
    util::parallel_for(points.size(),
                       [&](std::size_t i) { results[i] = fn(points[i]); });
    return results;
}

/// Opt-in charge tracing for the experiment binaries, driven by the
/// DBSP_TRACE environment variable (see report::TraceBundle::from_env).
/// The sink is not thread-safe, so binaries attach it to one representative
/// configuration re-run serially after the parallel sweep, not to the sweep
/// workers themselves.
class EnvTrace {
public:
    EnvTrace() : bundle_(report::TraceBundle::from_env("bench")) {}

    bool enabled() const { return bundle_.enabled(); }
    trace::Sink* sink() { return bundle_.sink(); }

    /// Print the aggregate report for the traced run (and write the Chrome
    /// file if a path was given). \p charged_cost is the simulator's own
    /// total, audited against the mirror.
    void report(const std::string& what, double charged_cost) const {
        bundle_.report("DBSP_TRACE", what, charged_cost);
    }

private:
    report::TraceBundle bundle_;
};

/// Opt-in address-stream locality profiling for the experiment binaries,
/// driven by the DBSP_LOCALITY environment variable (the --locality analogue
/// of EnvTrace / DBSP_TRACE):
///   unset / "" / "0"  — disabled;
///   "1" / "exact"     — exact reuse-distance engine;
///   "sampled"         — SHARDS-sampled engine at the default production rate;
///   "sampled@R"       — SHARDS-sampled at rate R in (0, 1].
/// Any other value disables the hook with a stderr warning — an experiment
/// sweep should not die on a typo in an observability knob.
/// Like EnvTrace, the sink is not thread-safe: binaries attach it to one
/// representative configuration re-run serially after the parallel sweep.
class EnvLocality {
public:
    EnvLocality() {
        const char* value = std::getenv("DBSP_LOCALITY");
        if (value == nullptr || value[0] == '\0' || std::strcmp(value, "0") == 0) return;
        locality::LocalityOptions options;
        if (std::strcmp(value, "1") == 0 || std::strcmp(value, "exact") == 0) {
            // exact defaults
        } else if (std::strcmp(value, "sampled") == 0) {
            options.mode = locality::LocalityOptions::Mode::kSampled;
        } else if (std::strncmp(value, "sampled@", 8) == 0) {
            char* end = nullptr;
            const double rate = std::strtod(value + 8, &end);
            if (value[8] == '\0' || end == nullptr || *end != '\0' || !(rate > 0.0) ||
                rate > 1.0) {
                warn(value);
                return;
            }
            options.mode = locality::LocalityOptions::Mode::kSampled;
            options.sample_rate = rate;
        } else {
            warn(value);
            return;
        }
        sink_ = std::make_unique<locality::LocalitySink>(options);
    }

    bool enabled() const { return sink_ != nullptr; }
    locality::LocalitySink* sink() { return sink_.get(); }

    /// Print the profiled run's analytics (reuse-distance histogram, working
    /// set, score) for the traced leg.
    void report(const std::string& what) {
        if (sink_ != nullptr) sink_->profile().print(stdout, "DBSP_LOCALITY " + what);
    }

private:
    static void warn(const char* value) {
        std::fprintf(stderr,
                     "bench: ignoring DBSP_LOCALITY=\"%s\" (expected 0, 1, exact, "
                     "sampled, or sampled@R with R in (0, 1])\n",
                     value);
    }

    std::unique_ptr<locality::LocalitySink> sink_;
};

/// The paper's case-study access functions.
inline std::vector<model::AccessFunction> case_study_functions() {
    return {model::AccessFunction::polynomial(0.35), model::AccessFunction::polynomial(0.5),
            model::AccessFunction::logarithmic()};
}

}  // namespace dbsp::bench
