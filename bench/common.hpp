#pragma once

/// \file common.hpp
/// Shared helpers for the experiment binaries. Each bench_eNN binary
/// reproduces one claim of the paper (see DESIGN.md §6) and prints
/// paper-style tables: one row per parameter point, columns for the measured
/// simulated cost, the closed-form prediction, and their ratio. A ratio
/// column that stays within a constant band across the sweep is the
/// empirical signature of the claimed Theta()/O() bound.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "model/access_function.hpp"
#include "trace/aggregate.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/sink.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dbsp::bench {

/// Print the experiment banner.
inline void banner(const char* id, const char* claim) {
    std::printf("==============================================================\n");
    std::printf("%s\n", id);
    std::printf("Paper claim: %s\n", claim);
    std::printf("==============================================================\n");
}

inline void section(const std::string& text) {
    std::printf("\n--- %s ---\n", text.c_str());
}

/// Print a fitted growth exponent next to its predicted value.
inline void report_slope(const std::string& what, const std::vector<double>& xs,
                         const std::vector<double>& ys, double predicted) {
    const auto fit = fit_loglog(xs, ys);
    std::printf("%-44s measured exponent %.3f (predicted %.3f, R^2 %.4f)\n",
                what.c_str(), fit.slope, predicted, fit.r_squared);
}

/// Print a ratio-band summary: Theta() bounds show as a bounded spread.
inline void report_band(const std::string& what, const std::vector<double>& ratios) {
    std::printf("%-44s ratio band [%.3f, %.3f], spread %.2fx\n", what.c_str(),
                *std::min_element(ratios.begin(), ratios.end()),
                *std::max_element(ratios.begin(), ratios.end()), spread(ratios));
}

/// Evaluate `fn` over every sweep point concurrently and return the results
/// in input order. Each point is an independent simulation (its own machine,
/// its own cost tables via the shared cache), so the only cross-thread state
/// is the mutex-guarded CostTableCache. Output stays deterministic because
/// the caller prints from the ordered result vector, never from the workers.
template <typename Point, typename Fn>
auto parallel_sweep(const std::vector<Point>& points, Fn&& fn)
    -> std::vector<decltype(fn(points[0]))> {
    using Result = decltype(fn(points[0]));
    std::vector<Result> results(points.size());
    util::parallel_for(points.size(),
                       [&](std::size_t i) { results[i] = fn(points[i]); });
    return results;
}

/// Opt-in charge tracing for the experiment binaries, driven by the
/// DBSP_TRACE environment variable:
///   unset / "" / "0"  — tracing off (sink() returns nullptr, zero overhead);
///   "1"               — print an aggregate charge-trace report;
///   any other value   — treated as a path: print the report AND write a
///                        Chrome trace_event JSON file there.
/// The sink is not thread-safe, so binaries attach it to one representative
/// configuration re-run serially after the parallel sweep, not to the sweep
/// workers themselves.
class EnvTrace {
public:
    EnvTrace() {
        const char* env = std::getenv("DBSP_TRACE");
        if (env == nullptr || *env == '\0' || std::string_view(env) == "0") return;
        aggregate_ = std::make_unique<trace::AggregateSink>();
        multi_.add(aggregate_.get());
        if (std::string_view(env) != "1") {
            path_ = env;
            chrome_ = std::make_unique<trace::ChromeTraceSink>("bench");
            multi_.add(chrome_.get());
        }
    }

    bool enabled() const { return aggregate_ != nullptr; }
    trace::Sink* sink() { return enabled() ? &multi_ : nullptr; }

    /// Print the aggregate report for the traced run (and write the Chrome
    /// file if a path was given). \p charged_cost is the simulator's own
    /// total, audited against the mirror.
    void report(const std::string& what, double charged_cost) const {
        if (!enabled()) return;
        section("charge trace: " + what);
        aggregate_->print(stdout);
        if (aggregate_->total() != charged_cost) {
            std::fprintf(stderr, "DBSP_TRACE: trace total %.17g != charged cost %.17g\n",
                         aggregate_->total(), charged_cost);
        }
        if (chrome_ != nullptr) {
            if (chrome_->write(path_)) {
                std::printf("wrote Chrome trace to %s\n", path_.c_str());
            } else {
                std::fprintf(stderr, "DBSP_TRACE: cannot write \"%s\"\n", path_.c_str());
            }
        }
    }

private:
    std::unique_ptr<trace::AggregateSink> aggregate_;
    std::unique_ptr<trace::ChromeTraceSink> chrome_;
    trace::MultiSink multi_;
    std::string path_;
};

/// The paper's case-study access functions.
inline std::vector<model::AccessFunction> case_study_functions() {
    return {model::AccessFunction::polynomial(0.35), model::AccessFunction::polynomial(0.5),
            model::AccessFunction::logarithmic()};
}

}  // namespace dbsp::bench
