/// Experiment E3 — Theorem 5 / Corollary 6: a fine-grained
/// D-BSP(v, mu, f(x)) program is simulated on the f(x)-HMM with slowdown
/// Theta(v) — linear in the loss of parallelism, with no hierarchy-induced
/// extra factor. We run random cluster-respecting routing workloads (every
/// label level exercised) at growing v, with the bandwidth function g equal
/// to the access function f as in Corollary 6, and tabulate
///
///   slowdown / v = (simulated HMM time) / (v * D-BSP time),
///
/// which the corollary predicts to be Theta(1). The pinned-context baseline
/// (superstep-by-superstep at full memory depth) shows the growing slowdown
/// the locality-aware schedule avoids.

#include "algos/permutation.hpp"
#include <cmath>

#include "bench/common.hpp"
#include "core/bounds.hpp"
#include "core/hmm_simulator.hpp"
#include "core/naive_hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"
#include "util/bits.hpp"

namespace {

std::vector<unsigned> workload_labels(std::uint64_t v, std::uint64_t seed) {
    // A fixed mixed-label profile: every level appears, deep levels more
    // often (as in recursive algorithms).
    dbsp::SplitMix64 rng(seed);
    std::vector<unsigned> labels;
    const unsigned log_v = dbsp::ilog2(v);
    for (unsigned l = 0; l <= log_v; ++l) {
        labels.push_back(log_v - l);
        if (l % 2 == 0) labels.push_back(static_cast<unsigned>(rng.next_below(log_v + 1)));
    }
    return labels;
}

struct Point {
    dbsp::model::AccessFunction f;
    std::uint64_t v;
};

/// One sweep task. Each Point is split into two independently scheduled
/// tasks — the direct run + Figure-1 simulation + bound, and the (much
/// heavier at large v) pinned-context naive simulation — so the parallel
/// sweep can overlap a slow naive point with several smart ones instead of
/// serialising both halves behind one worker.
struct Task {
    enum Kind { kDirectSmart, kNaive } kind;
    Point pt;
};

struct Row {
    double direct_time;
    double sim_cost;
    double naive_cost;
    double bound;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace dbsp;
    bench::Experiment ex("e3", "E3  D-BSP -> HMM simulation (Theorem 5 / Corollary 6)",
                         "any T-time fine-grained D-BSP(v, mu, f) program simulates on "
                         "f(x)-HMM in optimal Theta(T v) time");
    if (!ex.parse_args(argc, argv)) return 2;

    const auto functions = bench::case_study_functions();
    std::vector<Point> points;
    for (const auto& f : functions) {
        for (std::uint64_t v = 1 << 6; v <= (1 << 12); v <<= 2) {
            points.push_back({f, v});
        }
    }
    // Two tasks per point: partials[j] holds the direct/smart half and
    // partials[points.size() + j] the naive half of point j.
    std::vector<Task> tasks;
    tasks.reserve(points.size() * 2);
    for (const auto& pt : points) tasks.push_back({Task::kDirectSmart, pt});
    for (const auto& pt : points) tasks.push_back({Task::kNaive, pt});
    const auto partials = ex.timed_leg("e3 combined sweep", [&] {
        return bench::parallel_sweep(tasks, [](const Task& task) {
            const Point& pt = task.pt;
            const auto labels = workload_labels(pt.v, 7);
            Row row{0.0, 0.0, 0.0, 0.0};
            if (task.kind == Task::kDirectSmart) {
                algo::RandomRoutingProgram direct_prog(pt.v, labels, 101);
                model::DbspMachine machine(pt.f);
                const auto direct = machine.run(direct_prog);

                algo::RandomRoutingProgram sim_prog(pt.v, labels, 101);
                auto smoothed = core::smooth(
                    sim_prog, core::hmm_label_set(pt.f, sim_prog.context_words(), pt.v));
                const core::HmmSimulator sim(pt.f);
                const auto simulated = sim.simulate(*smoothed);

                row.direct_time = direct.time;
                row.sim_cost = simulated.hmm_cost;
                row.bound =
                    core::theorem5_bound(direct, pt.f, pt.v, direct_prog.context_words());
            } else {
                algo::RandomRoutingProgram naive_prog(pt.v, labels, 101);
                const core::NaiveHmmSimulator naive(pt.f);
                row.naive_cost = naive.simulate(naive_prog).hmm_cost;
            }
            return row;
        });
    });
    std::vector<Row> rows(points.size());
    for (std::size_t j = 0; j < points.size(); ++j) {
        rows[j] = partials[j];
        rows[j].naive_cost = partials[points.size() + j].naive_cost;
    }

    std::size_t idx = 0;
    for (const auto& f : functions) {
        bench::section("g(x) = f(x) = " + f.name());
        Table table({"v", "T (D-BSP)", "HMM sim", "slowdown/v", "Thm5 bound", "sim/bound",
                     "naive sim", "naive slowdown/v"});
        std::vector<double> smart_band, naive_trend, vs;
        for (std::uint64_t v = 1 << 6; v <= (1 << 12); v <<= 2) {
            const Row& r = rows[idx++];
            const double slowdown_per_v = r.sim_cost / (static_cast<double>(v) * r.direct_time);
            const double naive_per_v = r.naive_cost / (static_cast<double>(v) * r.direct_time);
            table.add_row_values({static_cast<double>(v), r.direct_time, r.sim_cost,
                                  slowdown_per_v, r.bound, r.sim_cost / r.bound,
                                  r.naive_cost, naive_per_v});
            smart_band.push_back(slowdown_per_v);
            naive_trend.push_back(naive_per_v);
            vs.push_back(static_cast<double>(v));
        }
        table.print();
        ex.check_band("slowdown / v (Cor. 6 Theta(1)) [" + f.name() + "]", smart_band, 2.2);
        // The pinned-context port pays a growing hierarchy penalty; the
        // Figure 1 schedule does not. The separation is the *sign* of the
        // naive fit's exponent, so gate it as a floor, not a target value.
        const auto naive_fit = fit_loglog(vs, naive_trend);
        ex.series("naive slowdown/v vs v [" + f.name() + "]", vs, naive_trend);
        ex.check_min("naive slowdown/v growth exponent [" + f.name() + "]", naive_fit.slope,
                     0.03);
        std::printf("(the naive column's exponent is > 0: the pinned-context port pays a "
                    "growing hierarchy penalty; the Figure 1 schedule does not)\n");
    }

    // Opt-in charge trace (DBSP_TRACE=1 or =path.json): re-run the largest
    // sweep point serially with a sink attached and report the breakdown.
    bench::EnvTrace env_trace;
    if (env_trace.enabled()) {
        ex.timed_leg("e3 traced re-run", [&] {
            const Point& pt = points.back();
            const auto labels = workload_labels(pt.v, 7);
            algo::RandomRoutingProgram prog(pt.v, labels, 101);
            auto smoothed =
                core::smooth(prog, core::hmm_label_set(pt.f, prog.context_words(), pt.v));
            core::HmmSimulator::Options options;
            options.trace = env_trace.sink();
            const auto res = core::HmmSimulator(pt.f, options).simulate(*smoothed);
            env_trace.report("HMM simulation, " + pt.f.name() + ", v=" + std::to_string(pt.v),
                             res.hmm_cost);
        });
    }
    // Opt-in locality profile (DBSP_LOCALITY=exact|sampled[@R]): profile the
    // largest sweep point's simulated address stream on a serial re-run,
    // same one-sink-one-leg discipline as the charge trace above.
    bench::EnvLocality env_loc;
    if (env_loc.enabled()) {
        ex.timed_leg("e3 locality re-run", [&] {
            const Point& pt = points.back();
            const auto labels = workload_labels(pt.v, 7);
            algo::RandomRoutingProgram prog(pt.v, labels, 101);
            auto smoothed =
                core::smooth(prog, core::hmm_label_set(pt.f, prog.context_words(), pt.v));
            core::HmmSimulator::Options options;
            options.trace = env_loc.sink();
            (void)core::HmmSimulator(pt.f, options).simulate(*smoothed);
            env_loc.report("HMM simulation, " + pt.f.name() + ", v=" + std::to_string(pt.v));
        });
    }
    return ex.finish();
}
