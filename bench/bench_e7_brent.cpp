/// Experiment E7 — Theorem 10 / Corollary 11 (the Brent's-lemma analogue):
/// a full D-BSP(v, mu, g) program simulates on a D-BSP(v', mu v/v', g) whose
/// processors are g(x)-HMMs with slowdown Theta(v / v'). Two views:
///  (a) fixed v, sweeping v': host time scales like (v/v') * T;
///  (b) fixed ratio v/v', growing v: the normalized slowdown
///      host / (T * v/v') stays in a constant band — no hierarchy-induced
///      extra slowdown (the contrast with Lambda(n, p, m) of [BP97/BP99]).

#include "algos/permutation.hpp"
#include <cmath>

#include "bench/common.hpp"
#include "core/bounds.hpp"
#include "core/self_simulator.hpp"
#include "model/dbsp_machine.hpp"
#include "util/bits.hpp"

namespace {

std::vector<unsigned> full_profile(std::uint64_t v) {
    std::vector<unsigned> labels;
    for (unsigned l = 0; l <= dbsp::ilog2(v); ++l) labels.push_back(dbsp::ilog2(v) - l);
    return labels;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dbsp;
    bench::Experiment ex("e7", "E7  D-BSP self-simulation (Theorem 10 / Corollary 11)",
                         "any T-time full D-BSP(v, mu, g) program runs on "
                         "D-BSP(v', mu v/v', g) in Theta(T v / v') time");
    if (!ex.parse_args(argc, argv)) return 2;

    const auto g = model::AccessFunction::polynomial(0.5);
    constexpr std::size_t kFill = 5;  // h = 6: a full program (h = Theta(mu))

    bench::section("(a) fixed v = 1024, sweeping v' (g = x^0.5)");
    {
        const std::uint64_t v = 1024;
        const auto labels = full_profile(v);
        algo::RandomRoutingProgram guest(v, labels, 17, 0, kFill);
        const double guest_time = model::DbspMachine(g).run(guest).time;
        Table table({"v'", "host time", "T*(v/v')", "normalized slowdown", "Thm10 bound",
                     "host/bound"});
        std::vector<double> vps, times;
        for (std::uint64_t vp = 1; vp <= v; vp *= 4) {
            algo::RandomRoutingProgram prog(v, labels, 17, 0, kFill);
            const core::SelfSimulator sim(g, vp);
            const auto host = sim.simulate(prog);
            algo::RandomRoutingProgram bprog(v, labels, 17, 0, kFill);
            const auto run = model::DbspMachine(g).run(bprog);
            const double bound =
                core::theorem10_bound(run, g, v, vp, bprog.context_words());
            const double ideal = guest_time * static_cast<double>(v) / static_cast<double>(vp);
            table.add_row_values({static_cast<double>(vp), host.host_time, ideal,
                                  host.host_time / ideal, bound, host.host_time / bound});
            vps.push_back(static_cast<double>(vp));
            times.push_back(host.host_time);
        }
        table.print();
        // The fitted exponent sits below -1: the deviation is a fixed
        // context-encoding constant, not a growing hierarchy penalty.
        ex.check_slope("host time vs v' [x^0.50]", vps, times, -1.0, 0.60);
    }

    bench::section("(b) fixed v/v' = 16, growing v: no extra slowdown");
    {
        Table table({"v", "v'", "guest T", "host time", "host/(T*16)"});
        std::vector<double> normalized;
        for (std::uint64_t v = 64; v <= 4096; v *= 4) {
            const auto labels = full_profile(v);
            algo::RandomRoutingProgram guest(v, labels, 23, 0, kFill);
            const double guest_time = model::DbspMachine(g).run(guest).time;
            algo::RandomRoutingProgram prog(v, labels, 23, 0, kFill);
            const core::SelfSimulator sim(g, v / 16);
            const auto host = sim.simulate(prog);
            const double norm = host.host_time / (guest_time * 16.0);
            table.add_row_values({static_cast<double>(v), static_cast<double>(v / 16),
                                  guest_time, host.host_time, norm});
            normalized.push_back(norm);
        }
        table.print();
        // "No extra slowdown" means the normalized ratio must not grow with v
        // (it in fact decays as the fixed context-encoding cost amortizes), so
        // check the growth factor across the sweep, not a flat band.
        ex.check_max("normalized slowdown growth, v 64 -> 4096 [x^0.50]",
                     normalized.back() / normalized.front(), 1.05);
    }
    return ex.finish();
}
