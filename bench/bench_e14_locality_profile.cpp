/// Experiment E14 — locality profile (beyond the paper's numbered results):
/// observe the *address streams* the simulations generate, not just their
/// charged costs. The paper's Section 5.3 discussion predicts that the
/// Figure 1 schedule translates submachine locality into locality of
/// reference; here we measure it directly with the reuse-distance profiler:
///  * the recursive (locality-preserving) simulator must show a strictly
///    lower mean-log2-reuse-distance (locality score) than the naive
///    pinned-context simulation of the same program — the reuse-distance CDF
///    shifts left and the Denning working set shrinks;
///  * under the E13 ablation, the structured network (bitonic) must profile
///    more local than the flat one (odd-even transposition) even under the
///    same recursive schedule — it is *submachine* locality that the
///    translation converts, not parallelism per se.

#include <algorithm>
#include <cmath>
#include <complex>

#include "algos/bitonic_sort.hpp"
#include "algos/fft_direct.hpp"
#include "algos/matmul.hpp"
#include "algos/odd_even_sort.hpp"
#include "bench/common.hpp"
#include "core/hmm_simulator.hpp"
#include "core/naive_hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "locality/sink.hpp"
#include "util/rng.hpp"

namespace {

using namespace dbsp;

std::vector<std::complex<double>> signal(std::uint64_t n, std::uint64_t seed) {
    SplitMix64 rng(seed);
    std::vector<std::complex<double>> x(n);
    for (auto& c : x) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};
    return x;
}

struct ProfilePair {
    locality::LocalityProfile recursive;
    locality::LocalityProfile naive;

    double gap() const { return naive.locality_score() - recursive.locality_score(); }
};

/// Run the same program under the Figure 1 schedule (recursive, smoothed)
/// and under the pinned-context baseline, profiling both address streams.
/// One sink per run — sinks are not thread-safe across sweep points, but
/// each point owns its sinks (the PR 2 one-sink-per-point pattern).
template <typename MakeProgram>
ProfilePair profile_both(const model::AccessFunction& f, std::uint64_t v,
                         const MakeProgram& make) {
    ProfilePair out;
    {
        auto prog = make();
        auto smoothed = core::smooth(*prog, core::hmm_label_set(f, prog->context_words(), v));
        locality::LocalitySink sink;
        core::HmmSimulator::Options opt;
        opt.trace = &sink;
        (void)core::HmmSimulator(f, opt).simulate(*smoothed);
        out.recursive = sink.profile();
    }
    {
        auto prog = make();
        locality::LocalitySink sink;
        core::NaiveHmmSimulator::Options opt;
        opt.trace = &sink;
        (void)core::NaiveHmmSimulator(f, opt).simulate(*prog);
        out.naive = sink.profile();
    }
    return out;
}

void add_score_row(Table& table, double n, const ProfilePair& p) {
    table.add_row_values({n, static_cast<double>(p.recursive.accesses),
                          p.recursive.locality_score(),
                          static_cast<double>(p.naive.accesses),
                          p.naive.locality_score(), p.gap()});
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dbsp;
    bench::Experiment ex("e14", "E14 Locality profile: reuse distance under the Figure 1 schedule",
                         "the D-BSP->HMM simulation translates submachine locality into "
                         "locality of reference: the recursive schedule's reuse-distance CDF "
                         "sits strictly left of the naive pinned-context baseline's");
    if (!ex.parse_args(argc, argv)) return 2;

    const auto f = model::AccessFunction::polynomial(0.5);

    // --- FFT (direct dag schedule): recursive vs naive simulation ----------
    bench::section("FFT direct schedule, recursive vs pinned simulation, x^0.5-HMM");
    std::vector<std::uint64_t> sizes;
    for (std::uint64_t n = 1 << 10; n <= (1 << 14); n <<= 2) sizes.push_back(n);
    const auto fft = bench::parallel_sweep(sizes, [&](std::uint64_t n) {
        return profile_both(f, n, [&] {
            return std::make_unique<algo::FftDirectProgram>(signal(n, n));
        });
    });
    {
        Table table({"n", "refs (rec)", "score rec", "refs (naive)", "score naive",
                     "score gap"});
        std::vector<double> ns, rec_scores, naive_scores, gaps;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            add_score_row(table, static_cast<double>(sizes[i]), fft[i]);
            ns.push_back(static_cast<double>(sizes[i]));
            rec_scores.push_back(fft[i].recursive.locality_score());
            naive_scores.push_back(fft[i].naive.locality_score());
            gaps.push_back(fft[i].gap());
        }
        table.print();
        ex.series("FFT locality score vs n (recursive sim)", ns, rec_scores);
        ex.series("FFT locality score vs n (naive sim)", ns, naive_scores);
        // Score-gap checks carry a 0.05 absolute drift tolerance: exact
        // locality scores are deterministic, but their last decimals are
        // fold-order artifacts that move when an engine change regroups the
        // identical event stream (see Experiment::check_min).
        ex.check_min("FFT score gap naive minus recursive at n=16384", gaps.back(), 4.0,
                     /*drift_tolerance=*/0.05);
        ex.check_min("FFT score gap minimum over n",
                     *std::min_element(gaps.begin(), gaps.end()), 3.0,
                     /*drift_tolerance=*/0.05);
    }

    // --- the CDF shift at the largest size, sliced at every level capacity --
    bench::section("per-level hit ratios (CDF sliced at LRU capacity 2^l), FFT n=16384");
    {
        const ProfilePair& p = fft.back();
        const unsigned top =
            std::max(p.recursive.max_level(), p.naive.max_level());
        Table table({"capacity", "hit ratio rec", "hit ratio naive", "w(tau) rec",
                     "w(tau) naive"});
        std::vector<double> caps, rec_hits, naive_hits, rec_ws, naive_ws;
        for (unsigned l = 0; l <= top; ++l) {
            const double cap = std::ldexp(1.0, static_cast<int>(l));
            caps.push_back(cap);
            rec_hits.push_back(p.recursive.hit_fraction(l));
            naive_hits.push_back(p.naive.hit_fraction(l));
            rec_ws.push_back(p.recursive.working_set(l));
            naive_ws.push_back(p.naive.working_set(l));
            if (l % 2 == 0) {
                table.add_row_values({cap, rec_hits.back(), naive_hits.back(),
                                      rec_ws.back(), naive_ws.back()});
            }
        }
        table.print();
        std::printf("(every row where the recursive column exceeds the naive one is the "
                    "CDF shift:\n the same program hits a 2^l-word LRU memory more often "
                    "under the Figure 1 schedule)\n");
        ex.series("table:per-level hit ratio, FFT direct n=16384, x^0.5-HMM"
                  ":LRU capacity (words):recursive sim",
                  caps, rec_hits);
        ex.series("table:per-level hit ratio, FFT direct n=16384, x^0.5-HMM"
                  ":LRU capacity (words):naive sim",
                  caps, naive_hits);
        ex.series("FFT n=16384 working set w(tau) (recursive sim)", caps, rec_ws);
        ex.series("FFT n=16384 working set w(tau) (naive sim)", caps, naive_ws);
    }

    // --- matmul: same contrast on a compute-heavy program -------------------
    bench::section("matmul, recursive vs pinned simulation, x^0.5-HMM");
    {
        const std::uint64_t v = 1 << 10;
        const auto pair = profile_both(f, v, [&] {
            SplitMix64 rng(v);
            std::vector<model::Word> a(v), b(v);
            for (auto& w : a) w = rng.next_below(1 << 20);
            for (auto& w : b) w = rng.next_below(1 << 20);
            return std::make_unique<algo::MatMulProgram>(a, b);
        });
        Table table({"n", "refs (rec)", "score rec", "refs (naive)", "score naive",
                     "score gap"});
        add_score_row(table, static_cast<double>(v), pair);
        table.print();
        ex.check_min("matmul score gap naive minus recursive at n=1024", pair.gap(), 4.0,
                     /*drift_tolerance=*/0.05);
    }

    // --- E13's ablation axis: structured vs flat under the same schedule ----
    bench::section("E13 ablation under the recursive schedule: bitonic vs odd-even");
    {
        const std::uint64_t n = 1 << 9;
        SplitMix64 rng(n);
        std::vector<model::Word> keys(n);
        for (auto& k : keys) k = rng.next();

        const auto profile_sorted = [&](auto&& make) {
            auto prog = make();
            auto smoothed =
                core::smooth(*prog, core::hmm_label_set(f, prog->context_words(), n));
            locality::LocalitySink sink;
            core::HmmSimulator::Options opt;
            opt.trace = &sink;
            (void)core::HmmSimulator(f, opt).simulate(*smoothed);
            return sink.profile();
        };
        const auto bitonic = profile_sorted(
            [&] { return std::make_unique<algo::BitonicSortProgram>(keys); });
        const auto oddeven = profile_sorted(
            [&] { return std::make_unique<algo::OddEvenTranspositionSortProgram>(keys); });

        Table table({"network", "refs", "cold", "locality score"});
        table.add_row({"bitonic", std::to_string(bitonic.accesses),
                       std::to_string(bitonic.cold_misses),
                       Table::fmt(bitonic.locality_score())});
        table.add_row({"odd-even", std::to_string(oddeven.accesses),
                       std::to_string(oddeven.cold_misses),
                       Table::fmt(oddeven.locality_score())});
        table.print();
        std::printf("(the flat network's 0-supersteps force full-memory context cycling "
                    "every round,\n so even the recursive schedule cannot keep its reuse "
                    "distances short)\n");
        ex.check_min("ablation score gap odd-even minus bitonic at n=512",
                     oddeven.locality_score() - bitonic.locality_score(), 0.25,
                     /*drift_tolerance=*/0.05);
    }

    return ex.finish();
}
