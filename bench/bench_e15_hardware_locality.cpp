/// Experiment E15 (hardware validation, beyond the paper's numbered
/// results): the locality of reference the Theorem 5 simulation *creates* is
/// locality a real memory hierarchy can *measure*. E13 established the
/// model-level ablation — structured (bitonic) vs flat (odd-even
/// transposition) parallelism under the same simulation — entirely inside
/// the cost model. E15 closes the loop with hardware:
///
///   1. Each simulation runs under a MultiSink{LocalitySink, RecordingSink}:
///      the first folds the address stream into the reuse-distance
///      histogram, the second captures the identical stream verbatim.
///   2. The stack-distance cache model (locality/cache_model.hpp) turns the
///      histogram into predicted LRU miss ratios — exact at power-of-two
///      capacities, interpolated at the host's real geometries.
///   3. The recorded stream is replayed through a host array laid out one
///      simulated word per cache line (so word-level reuse distance maps
///      1:1 to the line-level distance the L1D counter observes) with a
///      perf::CounterGroup armed around the replay loop.
///
/// Predicted checks run unconditionally (they depend only on the model);
/// measured checks compare the prediction against the live counters and are
/// *waived* — recorded in the artifact with the reason, gate drift skipped —
/// on hosts without PMU access (containers, DBSP_NO_PERF).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "algos/bitonic_sort.hpp"
#include "algos/odd_even_sort.hpp"
#include "bench/common.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "locality/cache_model.hpp"
#include "locality/recorder.hpp"
#include "locality/sink.hpp"
#include "perf/counters.hpp"
#include "trace/sink.hpp"
#include "util/rng.hpp"

namespace {

using namespace dbsp;

/// One (program, n) sweep point: the simulation's charged cost, the locality
/// profile, and the verbatim recorded address stream behind it.
struct Point {
    std::uint64_t n = 0;
    double hmm_cost = 0.0;
    locality::LocalityProfile profile;
    std::vector<trace::Addr> stream;
    trace::Addr extent = 0;
};

template <typename Prog>
Point simulate_point(const std::vector<model::Word>& keys,
                     const model::AccessFunction& f) {
    Prog prog(keys);
    locality::LocalitySink loc;
    locality::RecordingSink rec;
    trace::MultiSink multi{&loc, &rec};
    core::HmmSimulator::Options opt;
    opt.trace = &multi;
    auto sm = core::smooth(prog, core::hmm_label_set(f, prog.context_words(), keys.size()));
    const auto res = core::HmmSimulator(f, opt).simulate(*sm);
    Point p;
    p.n = keys.size();
    p.hmm_cost = res.hmm_cost;
    p.profile = loc.profile();
    p.stream = rec.stream();
    p.extent = rec.extent();
    return p;
}

/// One simulated word per 64-byte cache line, so a reuse distance of d words
/// in the recorded stream is a reuse distance of d *lines* to the hardware.
struct alignas(64) Line {
    std::uint64_t value;
};
static_assert(sizeof(Line) == 64);

volatile std::uint64_t g_replay_guard = 0;  // keeps the replay loop live

struct Replay {
    bool available = false;
    std::string reason;
    double l1d_miss_ratio = -1.0;
    double min_duty = 0.0;  ///< smallest multiplexing duty across live events
};

/// Replay the recorded stream through a host array under live counters. The
/// first pass runs before start() (page faults and first-touch are not the
/// stream's locality); `reps` scales short streams up to a stable sample.
Replay replay_stream(const std::vector<trace::Addr>& stream, trace::Addr extent,
                     int reps) {
    std::vector<Line> mem(std::max<trace::Addr>(extent, 1), Line{1});
    std::uint64_t sum = 0;
    for (const trace::Addr x : stream) sum += mem[x].value;  // warm-up pass
    perf::CounterGroup counters;
    counters.start();
    for (int r = 0; r < reps; ++r) {
        for (const trace::Addr x : stream) sum += mem[x].value;
    }
    counters.stop();
    g_replay_guard = sum;
    const perf::CounterSnapshot snap = counters.read();
    Replay out;
    out.available = snap.available;
    out.reason = snap.reason;
    if (snap.available) {
        out.l1d_miss_ratio = snap.ratio("l1d_read_misses", "l1d_read_accesses");
        double duty = 1.0;
        for (const auto& v : snap.values) {
            if (v.available) duty = std::min(duty, v.duty);
        }
        out.min_duty = duty;
    }
    return out;
}

/// Kendall rank correlation (tau-a over strictly ordered pairs): do the
/// predicted and measured miss ratios rank the sweep points the same way?
double kendall_tau(const std::vector<double>& a, const std::vector<double>& b) {
    int concordant = 0, discordant = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t j = i + 1; j < a.size(); ++j) {
            const double prod = (a[i] - a[j]) * (b[i] - b[j]);
            if (prod > 0.0) ++concordant;
            if (prod < 0.0) ++discordant;
        }
    }
    const int pairs = concordant + discordant;
    return pairs > 0 ? static_cast<double>(concordant - discordant) / pairs : 0.0;
}

/// Monotonicity sweep capacities: every power of two and every halfway point
/// (1.5 * 2^l, interpolated), ascending — crossing each bucket boundary and
/// the interior of each straddled bucket.
std::vector<std::uint64_t> monotone_capacities() {
    std::vector<std::uint64_t> caps;
    for (unsigned l = 0; l <= 40; ++l) {
        caps.push_back(1ull << l);
        caps.push_back((1ull << l) + (l > 0 ? (1ull << (l - 1)) : 0));
    }
    std::sort(caps.begin(), caps.end());
    caps.erase(std::unique(caps.begin(), caps.end()), caps.end());
    return caps;
}

}  // namespace

int main(int argc, char** argv) {
    bench::Experiment ex(
        "e15", "E15 Hardware-validated locality: predicted vs measured MRC",
        "the miss-ratio curve predicted from the simulation's reuse-distance "
        "profile ranks algorithms the same way live hardware cache counters do");
    if (!ex.parse_args(argc, argv)) return 2;

    const auto f = model::AccessFunction::polynomial(0.5);
    const std::vector<std::uint64_t> caps = monotone_capacities();

    bench::section("structured vs flat sorting networks, recorded and profiled");
    Table table({"n", "HMM sim bitonic", "HMM sim odd-even", "pred miss bitonic C=n/2",
                 "pred miss odd-even C=n/2", "stream bitonic", "stream odd-even"});
    std::vector<Point> bitonic_pts, oddeven_pts;
    std::vector<double> ns, pred_b, pred_o;
    std::uint64_t convention_violations = 0;
    std::uint64_t monotone_violations = 0;
    std::uint64_t rank_violations = 0;
    for (std::uint64_t n = 1 << 5; n <= (1 << 9); n <<= 1) {
        SplitMix64 rng(n);
        std::vector<model::Word> keys(n);
        for (auto& k : keys) k = rng.next();

        Point pb = simulate_point<algo::BitonicSortProgram>(keys, f);
        Point po = simulate_point<algo::OddEvenTranspositionSortProgram>(keys, f);

        // The RecordingSink must have seen exactly the references the
        // LocalitySink profiled — same stream, same linearization.
        if (pb.stream.size() != pb.profile.accesses) ++convention_violations;
        if (po.stream.size() != po.profile.accesses) ++convention_violations;

        // The MRC must be non-increasing in capacity, across bucket
        // boundaries and through every interpolated interior point.
        for (const Point* p : {&pb, &po}) {
            double prev = locality::predicted_miss_ratio(p->profile, 0);
            for (const std::uint64_t c : caps) {
                const double miss = locality::predicted_miss_ratio(p->profile, c);
                if (miss > prev + 1e-12) ++monotone_violations;
                prev = miss;
            }
        }

        // The discriminating geometry: at capacity n/2 words (power of two,
        // exact prediction) the telescoping merges fit, the flat network's
        // full-width rounds do not.
        const double mb = locality::predicted_miss_ratio(pb.profile, n / 2);
        const double mo = locality::predicted_miss_ratio(po.profile, n / 2);
        if (mo < mb) ++rank_violations;

        table.add_row_values({static_cast<double>(n), pb.hmm_cost, po.hmm_cost, mb, mo,
                              static_cast<double>(pb.stream.size()),
                              static_cast<double>(po.stream.size())});
        ns.push_back(static_cast<double>(n));
        pred_b.push_back(mb);
        pred_o.push_back(mo);
        bitonic_pts.push_back(std::move(pb));
        oddeven_pts.push_back(std::move(po));
    }
    table.print();
    ex.series("predicted miss ratio at C=n/2 vs n (bitonic)", ns, pred_b);
    ex.series("predicted miss ratio at C=n/2 vs n (odd-even)", ns, pred_o);
    {
        // The full predicted MRC at the largest n, both programs — the raw
        // curves behind the gap check, re-plottable offline.
        std::vector<double> xs, yb, yo;
        const unsigned top = std::max(bitonic_pts.back().profile.max_level(),
                                      oddeven_pts.back().profile.max_level());
        for (unsigned l = 0; l <= top; ++l) {
            xs.push_back(static_cast<double>(1ull << l));
            yb.push_back(locality::predicted_miss_ratio(bitonic_pts.back().profile, 1ull << l));
            yo.push_back(locality::predicted_miss_ratio(oddeven_pts.back().profile, 1ull << l));
        }
        ex.series("predicted MRC at n=512 (bitonic)", xs, yb);
        ex.series("predicted MRC at n=512 (odd-even)", xs, yo);
    }

    bench::section("predicted checks (model only — run everywhere)");
    ex.check_max("recording convention violations", static_cast<double>(convention_violations),
                 0.0);
    ex.check_max("MRC monotonicity violations", static_cast<double>(monotone_violations), 0.0);
    ex.check_max("predicted rank violations at C=n/2", static_cast<double>(rank_violations),
                 0.0);
    // Fold-order-exact but engine-sensitive, like E13's score gap: allow the
    // same absolute drift against the committed baseline.
    ex.check_min("predicted miss gap odd-even minus bitonic at n=512",
                 pred_o.back() - pred_b.back(), 0.04, /*drift_tolerance=*/0.05);

    // Arming counters and attaching the recording/profiling sinks must not
    // move the charged cost by a single bit.
    {
        SplitMix64 rng(99);
        std::vector<model::Word> keys(1 << 8);
        for (auto& k : keys) k = rng.next();
        algo::BitonicSortProgram plain(keys);
        auto sm = core::smooth(plain, core::hmm_label_set(f, plain.context_words(), keys.size()));
        const double plain_cost = core::HmmSimulator(f).simulate(*sm).hmm_cost;
        perf::CounterGroup counters;
        counters.start();
        const Point instrumented = simulate_point<algo::BitonicSortProgram>(keys, f);
        counters.stop();
        ex.check_min("counter-attach cost neutrality (bit-identical)",
                     instrumented.hmm_cost == plain_cost ? 1.0 : 0.0, 1.0);
    }

    bench::section("measured checks (live counters — waived without PMU access)");
    // Replay every recorded stream; short streams are repeated up to a
    // stable sample size so the counter ratios aren't startup noise.
    constexpr std::uint64_t kTargetAccesses = 1ull << 21;
    std::vector<double> meas_all, pred_all;  // paired per (program, n) point
    std::vector<Replay> replays;
    double measured_gap_top = 0.0;
    for (const auto* pts : {&bitonic_pts, &oddeven_pts}) {
        for (const Point& p : *pts) {
            const int reps = static_cast<int>(std::clamp<std::uint64_t>(
                p.stream.empty() ? 1 : kTargetAccesses / p.stream.size(), 1, 64));
            replays.push_back(replay_stream(p.stream, p.extent, reps));
        }
    }
    const bool counters_available =
        !replays.empty() && std::all_of(replays.begin(), replays.end(),
                                        [](const Replay& r) { return r.available; });
    // Predictions at the host's own L1D geometry, in cache *lines* (the
    // replay pins one word per line), paired with the measured ratios.
    const auto host_lines = locality::host_cache_geometries(/*word_bytes=*/64);
    const auto l1d = std::find_if(host_lines.begin(), host_lines.end(),
                                  [](const locality::CacheGeometry& g) {
                                      return g.name.rfind("L1", 0) == 0;
                                  });
    if (counters_available && l1d != host_lines.end()) {
        const std::size_t per = bitonic_pts.size();
        for (std::size_t i = 0; i < replays.size(); ++i) {
            const Point& p = i < per ? bitonic_pts[i] : oddeven_pts[i - per];
            pred_all.push_back(locality::predicted_miss_ratio(p.profile, l1d->capacity_words));
            meas_all.push_back(replays[i].l1d_miss_ratio);
            std::printf("  %-9s n=%4llu  predicted L1d miss %.4f  measured %.4f\n",
                        i < per ? "bitonic" : "odd-even",
                        static_cast<unsigned long long>(p.n), pred_all.back(),
                        meas_all.back());
        }
        measured_gap_top = replays.back().l1d_miss_ratio - replays[per - 1].l1d_miss_ratio;
        double min_duty = 1.0;
        for (const Replay& r : replays) min_duty = std::min(min_duty, r.min_duty);
        // A small negative gap is replay noise when both footprints fit in
        // L1; the check rules out a real inversion, not ties.
        ex.check_min("measured L1d rank: odd-even minus bitonic at n=512",
                     measured_gap_top, -0.01);
        ex.check_min("predicted vs measured L1d rank correlation",
                     kendall_tau(pred_all, meas_all), 0.25);
        ex.check_min("counter multiplexing duty (min event)", min_duty, 0.01);
        ex.series("measured L1d miss ratio per point", pred_all, meas_all);
    } else {
        const std::string reason =
            !counters_available
                ? (replays.empty() ? "no recorded streams" : replays.front().reason)
                : "host L1d geometry unavailable (sysfs)";
        std::printf("  hw counters: unavailable (%s) — measured checks waived\n",
                    reason.c_str());
        ex.check_waived("measured L1d rank: odd-even minus bitonic at n=512", "min", -0.01,
                        reason);
        ex.check_waived("predicted vs measured L1d rank correlation", "min", 0.25, reason);
        ex.check_waived("counter multiplexing duty (min event)", "min", 0.01, reason);
    }

    std::printf(
        "(the Mattson stack-distance model converts the profiled reuse-distance\n"
        " histogram into a predicted LRU miss-ratio curve; replaying the *same*\n"
        " recorded stream under perf counters measures the curve the hardware\n"
        " actually delivers — predicted checks gate everywhere, measured checks\n"
        " gate where a PMU exists and are waived, with the reason on record,\n"
        " where one does not)\n");
    return ex.finish();
}
