/// Experiment E6 — Proposition 9: n-sorting runs in O(n^alpha) on
/// D-BSP(n, O(1), x^alpha) (bitonic sorting, whose per-merge-stage superstep
/// costs telescope geometrically), and the simulation on x^alpha-HMM is
/// optimal Theta(n^(1+alpha)). The paper also remarks that BSP-style sorting
/// on D-BSP(n, O(1), log x) costs Omega(log^2 n)-ish — we tabulate the
/// measured log-case time next to log^3 n (bitonic's profile) for reference.

#include "algos/bitonic_sort.hpp"
#include <cmath>

#include "bench/common.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "hmm/primitives.hpp"
#include "model/dbsp_machine.hpp"
#include "util/rng.hpp"

namespace {

std::vector<dbsp::model::Word> keys(std::uint64_t n, std::uint64_t seed) {
    dbsp::SplitMix64 rng(seed);
    std::vector<dbsp::model::Word> k(n);
    for (auto& x : k) x = rng.next();
    return k;
}

std::vector<std::uint64_t> sweep_sizes() {
    std::vector<std::uint64_t> sizes;
    for (std::uint64_t n = 1 << 6; n <= (1 << 12); n <<= 2) sizes.push_back(n);
    return sizes;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dbsp;
    bench::Experiment ex("e6", "E6  Sorting (Proposition 9)",
                         "bitonic n-sorting in O(n^a) on D-BSP(n, O(1), x^a); simulation on "
                         "x^a-HMM is optimal Theta(n^(1+a))");
    if (!ex.parse_args(argc, argv)) return 2;

    const auto sizes = sweep_sizes();

    for (double alpha : {0.35, 0.5}) {
        const auto g = model::AccessFunction::polynomial(alpha);
        bench::section("D-BSP(n, O(1), " + g.name() + ") running time");
        const auto times = bench::parallel_sweep(sizes, [&](std::uint64_t n) {
            algo::BitonicSortProgram prog(keys(n, n));
            return model::DbspMachine(g).run(prog).time;
        });
        Table table({"n", "T (D-BSP)", "n^alpha", "ratio"});
        std::vector<double> ratios;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const double shape = std::pow(static_cast<double>(sizes[i]), alpha);
            table.add_row_values(
                {static_cast<double>(sizes[i]), times[i], shape, times[i] / shape});
            ratios.push_back(times[i] / shape);
        }
        table.print();
        ex.check_band("T / n^alpha [" + g.name() + "]", ratios, 1.5);
    }

    bench::section("D-BSP(n, O(1), log x): measured vs log^3 n (bitonic profile)");
    {
        const auto g = model::AccessFunction::logarithmic();
        const auto times = bench::parallel_sweep(sizes, [&](std::uint64_t n) {
            algo::BitonicSortProgram prog(keys(n, n));
            return model::DbspMachine(g).run(prog).time;
        });
        Table table({"n", "T (D-BSP)", "log^3 n", "ratio"});
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const double lg = std::log2(static_cast<double>(sizes[i]));
            table.add_row_values({static_cast<double>(sizes[i]), times[i], lg * lg * lg,
                                  times[i] / (lg * lg * lg)});
        }
        table.print();
        std::printf("(bitonic is a Theta(log^3 n) D-BSP(log x) algorithm; the paper "
                    "conjectures Omega(log^2 n)-time algorithms exist but none better "
                    "is known)\n");
    }

    for (double alpha : {0.35, 0.5}) {
        const auto f = model::AccessFunction::polynomial(alpha);
        bench::section("simulation on " + f.name() + "-HMM vs Theta(n^(1+alpha))");
        struct SimRow {
            double sim_cost;
            double oblivious_cost;
        };
        const auto rows = bench::parallel_sweep(sizes, [&](std::uint64_t n) {
            algo::BitonicSortProgram prog(keys(n, n));
            auto smoothed =
                core::smooth(prog, core::hmm_label_set(f, prog.context_words(), n));
            const auto res = core::HmmSimulator(f).simulate(*smoothed);
            // Flat-memory baseline: comparison mergesort run obliviously.
            hmm::Machine m(f, 2 * n);
            {
                auto k = keys(n, n);
                std::copy(k.begin(), k.end(), m.raw().begin());
            }
            m.reset_cost();
            hmm::oblivious_merge_sort(m, n);
            return SimRow{res.hmm_cost, m.cost()};
        });
        Table table({"n", "HMM sim", "n^(1+a)", "ratio", "oblivious mergesort"});
        std::vector<double> ratios;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const double shape = std::pow(static_cast<double>(sizes[i]), 1.0 + alpha);
            table.add_row_values({static_cast<double>(sizes[i]), rows[i].sim_cost, shape,
                                  rows[i].sim_cost / shape, rows[i].oblivious_cost});
            ratios.push_back(rows[i].sim_cost / shape);
        }
        table.print();
        ex.check_band("simulated / n^(1+alpha) [" + f.name() + "]", ratios, 2.2);
    }
    return ex.finish();
}
