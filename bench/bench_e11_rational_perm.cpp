/// Experiment E11 — Section 6 remark: the general simulation delivers
/// messages by sorting (it must cope with arbitrary h-relations), but when a
/// superstep's pattern is a known rational permutation — the transposes of
/// the recursive DFT — delivery can use the tiled BT transpose instead,
/// dropping the sort's log factor: the simulated DFT improves from
/// O(n log n log log n) to the optimal O(n log n).

#include <bit>
#include <complex>

#include "algos/fft_recursive.hpp"
#include <cmath>

#include "bench/common.hpp"
#include "bt/fft.hpp"
#include "core/bt_simulator.hpp"
#include "core/smoothing.hpp"
#include "util/rng.hpp"

namespace {

std::vector<std::complex<double>> signal(std::uint64_t n, std::uint64_t seed) {
    dbsp::SplitMix64 rng(seed);
    std::vector<std::complex<double>> x(n);
    for (auto& c : x) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};
    return x;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dbsp;
    bench::Experiment ex("e11", "E11 Rational-permutation delivery (Section 6)",
                         "delivering the recursive DFT's transposes with the rational-"
                         "permutation primitive instead of sorting yields the optimal "
                         "O(n log n) BT time");
    if (!ex.parse_args(argc, argv)) return 2;

    for (const auto& f :
         {model::AccessFunction::polynomial(0.35), model::AccessFunction::logarithmic()}) {
        bench::section("f(x) = " + f.name());
        Table table({"n", "sort delivery", "transpose delivery", "speedup", "n log n",
                     "transpose/(n log n)", "#transposes"});
        std::vector<double> ratios, speedups;
        for (std::uint64_t n : {16u, 256u, 65536u}) {
            algo::FftRecursiveProgram p_sort(signal(n, n));
            auto s_sort =
                core::smooth(p_sort, core::bt_label_set(f, p_sort.context_words(), n));
            const auto r_sort = core::BtSimulator(f).simulate(*s_sort);

            algo::FftRecursiveProgram p_rat(signal(n, n));
            auto s_rat =
                core::smooth(p_rat, core::bt_label_set(f, p_rat.context_words(), n));
            core::BtSimulator::Options options;
            options.use_rational_permutations = true;
            const auto r_rat = core::BtSimulator(f, options).simulate(*s_rat);

            const double dn = static_cast<double>(n);
            const double shape = dn * std::log2(dn);
            table.add_row_values({dn, r_sort.bt_cost, r_rat.bt_cost,
                                  r_sort.bt_cost / r_rat.bt_cost, shape,
                                  r_rat.bt_cost / shape,
                                  static_cast<double>(r_rat.transpose_invocations)});
            ratios.push_back(r_rat.bt_cost / shape);
            speedups.push_back(r_sort.bt_cost / r_rat.bt_cost);
        }
        table.print();
        ex.check_band("transpose-delivery cost / (n log n) [" + f.name() + "]", ratios, 1.8);
        // Sorting pays the extra log log n the rational permutation avoids,
        // so the speedup must widen across the sweep.
        ex.check_min("sort/transpose speedup growth [" + f.name() + "]",
                     speedups.back() / speedups.front(), 1.02);
    }
    std::printf("\n(the speedup column grows with n: sorting pays the extra log log n "
                "the rational permutation avoids)\n");

    bench::section("reference: the hand-written Theta(n log n) BT FFT of [ACS87]");
    {
        Table table({"n", "native BT FFT", "n log n", "ratio",
                     "sim-with-transposes / native"});
        for (std::uint64_t n : {256u, 65536u}) {
            const auto f = model::AccessFunction::polynomial(0.35);
            bt::Machine native(f, 6 * n + 64);
            {
                const auto x = signal(n, n);
                for (std::uint64_t e = 0; e < n; ++e) {
                    native.raw()[2 * n + 32 + e] = std::bit_cast<model::Word>(x[e].real());
                    native.raw()[3 * n + 32 + e] = std::bit_cast<model::Word>(x[e].imag());
                }
            }
            native.reset_cost();
            bt::fft_natural_planar(native, 2 * n + 32, n);

            algo::FftRecursiveProgram prog(signal(n, n));
            auto sm = core::smooth(prog, core::bt_label_set(f, prog.context_words(), n));
            core::BtSimulator::Options options;
            options.use_rational_permutations = true;
            const auto sim = core::BtSimulator(f, options).simulate(*sm);

            const double shape = static_cast<double>(n) * std::log2(n);
            table.add_row_values({static_cast<double>(n), native.cost(), shape,
                                  native.cost() / shape, sim.bt_cost / native.cost()});
        }
        table.print();
        std::printf("(the simulated D-BSP algorithm lands a machinery-constant above "
                    "the native optimum, at the same O(n log n) shape)\n");
    }
    return ex.finish();
}
