/// Experiment E5 — Proposition 8: the n-DFT problem.
///  * On D-BSP(n, O(1), x^alpha), the direct FFT-dag schedule runs in
///    T = O(n^alpha) (one i-superstep per level, geometric sum).
///  * On D-BSP(n, O(1), log x), the recursive sqrt(n)-decomposition runs in
///    T = O(log n log log n), beating the direct schedule's Theta(log^2 n).
///  * Simulated on the matching HMM, the algorithms reach the best known
///    bounds: O(n^(1+alpha)) on x^alpha-HMM, O(n log n log log n) on
///    log x-HMM.

#include <complex>

#include "algos/fft_direct.hpp"
#include "algos/fft_recursive.hpp"
#include <cmath>

#include "bench/common.hpp"
#include "core/hmm_simulator.hpp"
#include "hmm/fft.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"
#include "util/rng.hpp"

namespace {

std::vector<std::complex<double>> signal(std::uint64_t n, std::uint64_t seed) {
    dbsp::SplitMix64 rng(seed);
    std::vector<std::complex<double>> x(n);
    for (auto& c : x) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};
    return x;
}

}  // namespace

int main() {
    using namespace dbsp;
    bench::banner("E5  Discrete Fourier Transform (Proposition 8)",
                  "n-DFT in O(n^a) on x^a D-BSP (direct schedule) and "
                  "O(log n log log n) on log x D-BSP (recursive schedule); the "
                  "simulations match the best known HMM bounds");

    // --- D-BSP times: direct schedule on x^alpha -----------------------------
    bench::section("direct FFT schedule on D-BSP(n, O(1), x^0.5)");
    {
        const auto g = model::AccessFunction::polynomial(0.5);
        Table table({"n", "T (D-BSP)", "T / n^0.5"});
        std::vector<double> ns, ts;
        for (std::uint64_t n = 1 << 6; n <= (1 << 14); n <<= 2) {
            algo::FftDirectProgram prog(signal(n, n));
            const auto run = model::DbspMachine(g).run(prog);
            table.add_row_values({static_cast<double>(n), run.time,
                                  run.time / std::sqrt(static_cast<double>(n))});
            ns.push_back(static_cast<double>(n));
            ts.push_back(run.time);
        }
        table.print();
        bench::report_slope("T vs n", ns, ts, 0.5);
    }

    // --- D-BSP times: the two schedules under log x --------------------------
    bench::section("direct vs recursive schedule on D-BSP(n, O(1), log x)");
    {
        const auto g = model::AccessFunction::logarithmic();
        Table table({"n", "T direct", "~log^2 n", "T recursive", "~log n loglog n",
                     "direct/recursive"});
        for (std::uint64_t n : {16u, 256u, 65536u}) {
            algo::FftDirectProgram direct(signal(n, n));
            algo::FftRecursiveProgram recursive(signal(n, n));
            const auto rd = model::DbspMachine(g).run(direct);
            const auto rr = model::DbspMachine(g).run(recursive);
            const double lg = std::log2(static_cast<double>(n));
            table.add_row_values({static_cast<double>(n), rd.time, lg * lg, rr.time,
                                  lg * std::log2(lg), rd.time / rr.time});
        }
        table.print();
        std::printf("(the recursive schedule's advantage grows like log n / log log n)\n");
    }

    // --- simulated HMM times --------------------------------------------------
    bench::section("simulation on x^0.5-HMM (predict Theta(n^1.5))");
    {
        const auto f = model::AccessFunction::polynomial(0.5);
        Table table({"n", "HMM sim (direct alg)", "n^1.5", "ratio", "native HMM FFT"});
        std::vector<double> ratios;
        for (std::uint64_t n : {16u, 256u, 65536u}) {
            algo::FftDirectProgram prog(signal(n, n));
            auto smoothed =
                core::smooth(prog, core::hmm_label_set(f, prog.context_words(), n));
            const auto res = core::HmmSimulator(f).simulate(*smoothed);
            const double shape = std::pow(static_cast<double>(n), 1.5);
            // The hand-written [AACS87]-style four-step FFT on the same
            // machine: the optimum the simulation is measured against.
            hmm::Machine native(f, 6 * n + 64);
            native.reset_cost();
            hmm::fft_natural(native, 2 * n + 32, n);
            table.add_row_values({static_cast<double>(n), res.hmm_cost, shape,
                                  res.hmm_cost / shape, native.cost()});
            ratios.push_back(res.hmm_cost / shape);
        }
        table.print();
        bench::report_band("simulated / n^(1+alpha)", ratios);
    }

    bench::section("simulation on log x-HMM (predict Theta(n log n loglog n))");
    {
        const auto f = model::AccessFunction::logarithmic();
        Table table({"n", "HMM sim (recursive alg)", "n logn loglogn", "ratio"});
        std::vector<double> ratios;
        for (std::uint64_t n : {16u, 256u, 65536u}) {
            algo::FftRecursiveProgram prog(signal(n, n));
            auto smoothed =
                core::smooth(prog, core::hmm_label_set(f, prog.context_words(), n));
            const auto res = core::HmmSimulator(f).simulate(*smoothed);
            const double dn = static_cast<double>(n);
            const double shape = dn * std::log2(dn) * std::log2(std::log2(dn) + 1.0);
            table.add_row_values({dn, res.hmm_cost, shape, res.hmm_cost / shape});
            ratios.push_back(res.hmm_cost / shape);
        }
        table.print();
        bench::report_band("simulated / (n log n loglog n)", ratios);
    }
    return 0;
}
