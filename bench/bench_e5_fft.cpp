/// Experiment E5 — Proposition 8: the n-DFT problem.
///  * On D-BSP(n, O(1), x^alpha), the direct FFT-dag schedule runs in
///    T = O(n^alpha) (one i-superstep per level, geometric sum).
///  * On D-BSP(n, O(1), log x), the recursive sqrt(n)-decomposition runs in
///    T = O(log n log log n), beating the direct schedule's Theta(log^2 n).
///  * Simulated on the matching HMM, the algorithms reach the best known
///    bounds: O(n^(1+alpha)) on x^alpha-HMM, O(n log n log log n) on
///    log x-HMM.

#include <complex>

#include "algos/fft_direct.hpp"
#include "algos/fft_recursive.hpp"
#include <cmath>

#include "bench/common.hpp"
#include "core/hmm_simulator.hpp"
#include "hmm/fft.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"
#include "util/rng.hpp"

namespace {

std::vector<std::complex<double>> signal(std::uint64_t n, std::uint64_t seed) {
    dbsp::SplitMix64 rng(seed);
    std::vector<std::complex<double>> x(n);
    for (auto& c : x) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};
    return x;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dbsp;
    bench::Experiment ex("e5", "E5  Discrete Fourier Transform (Proposition 8)",
                         "n-DFT in O(n^a) on x^a D-BSP (direct schedule) and "
                         "O(log n log log n) on log x D-BSP (recursive schedule); the "
                         "simulations match the best known HMM bounds");
    if (!ex.parse_args(argc, argv)) return 2;

    // --- D-BSP times: direct schedule on x^alpha -----------------------------
    bench::section("direct FFT schedule on D-BSP(n, O(1), x^0.5)");
    {
        const auto g = model::AccessFunction::polynomial(0.5);
        std::vector<std::uint64_t> sizes;
        for (std::uint64_t n = 1 << 6; n <= (1 << 14); n <<= 2) sizes.push_back(n);
        const auto times = bench::parallel_sweep(sizes, [&](std::uint64_t n) {
            algo::FftDirectProgram prog(signal(n, n));
            return model::DbspMachine(g).run(prog).time;
        });
        Table table({"n", "T (D-BSP)", "T / n^0.5"});
        std::vector<double> ns, ts;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            table.add_row_values({static_cast<double>(sizes[i]), times[i],
                                  times[i] / std::sqrt(static_cast<double>(sizes[i]))});
            ns.push_back(static_cast<double>(sizes[i]));
            ts.push_back(times[i]);
        }
        table.print();
        ex.check_slope("direct-schedule T vs n [x^0.50]", ns, ts, 0.5, 0.20);
    }

    // --- D-BSP times: the two schedules under log x --------------------------
    bench::section("direct vs recursive schedule on D-BSP(n, O(1), log x)");
    {
        const auto g = model::AccessFunction::logarithmic();
        const std::vector<std::uint64_t> sizes = {16, 256, 65536};
        struct Pair {
            double direct;
            double recursive;
        };
        const auto rows = bench::parallel_sweep(sizes, [&](std::uint64_t n) {
            algo::FftDirectProgram direct(signal(n, n));
            algo::FftRecursiveProgram recursive(signal(n, n));
            return Pair{model::DbspMachine(g).run(direct).time,
                        model::DbspMachine(g).run(recursive).time};
        });
        Table table({"n", "T direct", "~log^2 n", "T recursive", "~log n loglog n",
                     "direct/recursive"});
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const double lg = std::log2(static_cast<double>(sizes[i]));
            table.add_row_values({static_cast<double>(sizes[i]), rows[i].direct, lg * lg,
                                  rows[i].recursive, lg * std::log2(lg),
                                  rows[i].direct / rows[i].recursive});
        }
        table.print();
        std::printf(
            "(asymptotically the recursive schedule wins by log n / log log n; at\n"
            " these sizes constant factors dominate, so we check the ratio is a\n"
            " stable band rather than the not-yet-visible growth)\n");
        std::vector<double> ratios;
        ratios.reserve(rows.size());
        for (const Pair& row : rows) ratios.push_back(row.direct / row.recursive);
        ex.check_band("direct/recursive ratio bounded [log x]", ratios, 1.5);
    }

    // --- simulated HMM times --------------------------------------------------
    bench::section("simulation on x^0.5-HMM (predict Theta(n^1.5))");
    {
        const auto f = model::AccessFunction::polynomial(0.5);
        const std::vector<std::uint64_t> sizes = {16, 256, 65536};
        struct SimRow {
            double sim_cost;
            double native_cost;
        };
        const auto rows = bench::parallel_sweep(sizes, [&](std::uint64_t n) {
            algo::FftDirectProgram prog(signal(n, n));
            auto smoothed =
                core::smooth(prog, core::hmm_label_set(f, prog.context_words(), n));
            const auto res = core::HmmSimulator(f).simulate(*smoothed);
            // The hand-written [AACS87]-style four-step FFT on the same
            // machine: the optimum the simulation is measured against.
            hmm::Machine native(f, 6 * n + 64);
            native.reset_cost();
            hmm::fft_natural(native, 2 * n + 32, n);
            return SimRow{res.hmm_cost, native.cost()};
        });
        Table table({"n", "HMM sim (direct alg)", "n^1.5", "ratio", "native HMM FFT"});
        std::vector<double> ratios;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const double shape = std::pow(static_cast<double>(sizes[i]), 1.5);
            table.add_row_values({static_cast<double>(sizes[i]), rows[i].sim_cost, shape,
                                  rows[i].sim_cost / shape, rows[i].native_cost});
            ratios.push_back(rows[i].sim_cost / shape);
        }
        table.print();
        ex.check_band("simulated / n^(1+alpha) [x^0.50]", ratios, 1.5);
    }

    bench::section("simulation on log x-HMM (predict Theta(n log n loglog n))");
    {
        const auto f = model::AccessFunction::logarithmic();
        const std::vector<std::uint64_t> sizes = {16, 256, 65536};
        const auto costs = bench::parallel_sweep(sizes, [&](std::uint64_t n) {
            algo::FftRecursiveProgram prog(signal(n, n));
            auto smoothed =
                core::smooth(prog, core::hmm_label_set(f, prog.context_words(), n));
            return core::HmmSimulator(f).simulate(*smoothed).hmm_cost;
        });
        Table table({"n", "HMM sim (recursive alg)", "n logn loglogn", "ratio"});
        std::vector<double> ratios;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const double dn = static_cast<double>(sizes[i]);
            const double shape = dn * std::log2(dn) * std::log2(std::log2(dn) + 1.0);
            table.add_row_values({dn, costs[i], shape, costs[i] / shape});
            ratios.push_back(costs[i] / shape);
        }
        table.print();
        ex.check_band("simulated / (n log n loglog n) [log x]", ratios, 1.6);
    }
    return ex.finish();
}
