/// Experiment E4 — Proposition 7: the n-MM problem (sqrt(n) x sqrt(n)
/// semiring matrix multiplication on n processors, Fig. 3 algorithm) runs in
///   O(n^alpha)          on D-BSP(n, O(1), x^alpha), alpha > 1/2,
///   O(sqrt(n) log n)    at alpha = 1/2,
///   O(sqrt(n))          for alpha < 1/2 and for g = log x,
/// and its HMM simulation matches the Theta(n^(1+alpha)) / Theta(n^(3/2))
/// lower bounds of [AACS87]. The hierarchy-oblivious schoolbook multiply
/// supplies the flat-memory baseline the introduction argues against.

#include "algos/matmul.hpp"
#include "algos/serial_reference.hpp"
#include <cmath>

#include "bench/common.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "hmm/matmul.hpp"
#include "hmm/primitives.hpp"
#include "model/dbsp_machine.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace {

dbsp::algo::MatMulProgram make_program(std::uint64_t n, std::uint64_t seed) {
    dbsp::SplitMix64 rng(seed);
    std::vector<dbsp::model::Word> a(n), b(n);
    for (auto& x : a) x = rng.next_below(1 << 20);
    for (auto& x : b) x = rng.next_below(1 << 20);
    return dbsp::algo::MatMulProgram(a, b);
}

struct Point {
    dbsp::model::AccessFunction f;
    std::uint64_t n;
};

struct SimRow {
    double sim_cost;
    double native_cost;
    double oblivious_cost;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace dbsp;
    bench::Experiment ex("e4", "E4  Matrix multiplication (Proposition 7)",
                         "D-BSP n-MM in O(n^a)/O(sqrt(n) log n)/O(sqrt(n)); simulation is "
                         "optimal on the HMM");
    if (!ex.parse_args(argc, argv)) return 2;

    // --- D-BSP running times across the three alpha regimes -----------------
    const std::vector<std::pair<model::AccessFunction, double>> regimes = {
        {model::AccessFunction::polynomial(0.75), 0.75},      // T = Theta(n^a)
        {model::AccessFunction::polynomial(0.5), 0.5},        // T = Theta(sqrt n log n)
        {model::AccessFunction::polynomial(0.35), 0.5},       // T = Theta(sqrt n)
        {model::AccessFunction::logarithmic(), 0.5},          // T = Theta(sqrt n)
    };
    {
        std::vector<Point> points;
        for (const auto& [g, predicted_exp] : regimes) {
            (void)predicted_exp;
            for (std::uint64_t n = 1 << 4; n <= (1 << 12); n <<= 2) points.push_back({g, n});
        }
        const auto times = bench::parallel_sweep(points, [](const Point& pt) {
            auto prog = make_program(pt.n, pt.n);
            model::DbspMachine machine(pt.f);
            return machine.run(prog).time;
        });
        std::size_t idx = 0;
        for (const auto& [g, predicted_exp] : regimes) {
            bench::section("D-BSP(n, O(1), " + g.name() + ") running time");
            Table table({"n", "T (D-BSP)", "T / predicted-shape"});
            std::vector<double> ns, ts;
            for (std::uint64_t n = 1 << 4; n <= (1 << 12); n <<= 2) {
                const double t = times[idx++];
                double shape;
                const double dn = static_cast<double>(n);
                if (g.name() == "x^0.75") {
                    shape = std::pow(dn, 0.75);
                } else if (g.name() == "x^0.50") {
                    shape = std::sqrt(dn) * std::log2(dn);
                } else {
                    shape = std::sqrt(dn);
                }
                table.add_row_values({dn, t, t / shape});
                ns.push_back(dn);
                ts.push_back(t);
            }
            table.print();
            ex.check_slope("T vs n [" + g.name() + "]", ns, ts, predicted_exp, 0.25);
        }
    }

    // --- simulated HMM time vs the [AACS87] lower bound ---------------------
    const std::vector<model::AccessFunction> sim_functions = {
        model::AccessFunction::polynomial(0.35), model::AccessFunction::polynomial(0.5),
        model::AccessFunction::polynomial(0.75), model::AccessFunction::logarithmic()};
    {
        std::vector<Point> points;
        for (const auto& f : sim_functions) {
            for (std::uint64_t n = 1 << 4; n <= (1 << 12); n <<= 2) points.push_back({f, n});
        }
        const auto rows = bench::parallel_sweep(points, [](const Point& pt) {
            auto prog = make_program(pt.n, pt.n);
            auto smoothed =
                core::smooth(prog, core::hmm_label_set(pt.f, prog.context_words(), pt.n));
            const core::HmmSimulator sim(pt.f);
            const auto res = sim.simulate(*smoothed);
            const std::uint64_t s = std::uint64_t{1} << (ilog2(pt.n) / 2);
            // The hand-written blocked recursion (the [AACS87]-style optimum)
            // and the hierarchy-oblivious schoolbook loop, on the same machine.
            hmm::Machine nat(pt.f, 4 * pt.n + 64);
            hmm::blocked_matmul(nat, pt.n, 2 * pt.n, 3 * pt.n, s);
            hmm::Machine m(pt.f, 3 * pt.n + 16);
            hmm::oblivious_matmul(m, 0, pt.n, 2 * pt.n, s);
            return SimRow{res.hmm_cost, nat.cost(), m.cost()};
        });
        std::size_t idx = 0;
        for (const auto& f : sim_functions) {
            bench::section("simulation on " + f.name() + "-HMM vs lower bound");
            Table table({"n", "HMM sim", "lower-bound shape", "ratio", "native blocked MM",
                         "oblivious MM"});
            std::vector<double> ratios;
            for (std::uint64_t n = 1 << 4; n <= (1 << 12); n <<= 2) {
                const SimRow& r = rows[idx++];
                // [AACS87] lower bounds: n^(1+a) for x^a (communication bound
                // n^(3/2) dominates when a < 1/2); sqrt(n)^3 = n^(3/2) for log x.
                const double dn = static_cast<double>(n);
                double shape;
                if (f.name() == "x^0.50") {
                    shape = std::pow(dn, 1.5) * std::log2(dn);
                } else if (f.name() == "x^0.75") {
                    shape = std::pow(dn, 1.75);  // n^(1+alpha)
                } else {
                    shape = std::pow(dn, 1.5);  // computation bound dominates
                }
                table.add_row_values(
                    {dn, r.sim_cost, shape, r.sim_cost / shape, r.native_cost, r.oblivious_cost});
                ratios.push_back(r.sim_cost / shape);
            }
            table.print();
            ex.check_band("simulated / optimal-shape [" + f.name() + "]", ratios, 2.5);
        }
    }
    return ex.finish();
}
