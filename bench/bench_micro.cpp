/// Wall-clock microbenchmarks (google-benchmark) of the simulator
/// implementations themselves — not paper results, but useful for keeping
/// the cost-model machinery fast enough to run the E1-E12 experiments.
///
/// `bench_micro --json [path]` skips google-benchmark and instead times the
/// E3 simulation workload with the bulk fast path and cost-table cache on
/// vs. off, writing the measurements (words simulated per second, table
/// builds avoided, speedup) to BENCH_micro.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "algos/bitonic_sort.hpp"
#include "algos/permutation.hpp"
#include "core/bt_simulator.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "hmm/machine.hpp"
#include "hmm/primitives.hpp"
#include "locality/sink.hpp"
#include "model/cost_table_cache.hpp"
#include "perf/counters.hpp"
#include "model/dbsp_machine.hpp"
#include "model/superstep_exec.hpp"
#include "report/experiment.hpp"
#include "report/json.hpp"
#include "report/provenance.hpp"
#include "trace/aggregate.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace {

using namespace dbsp;

void BM_HmmScan(benchmark::State& state) {
    const auto n = static_cast<std::uint64_t>(state.range(0));
    hmm::Machine m(model::AccessFunction::polynomial(0.5), n);
    for (auto _ : state) {
        m.reset_cost();
        benchmark::DoNotOptimize(hmm::touch_all(m, n));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HmmScan)->Arg(1 << 14)->Arg(1 << 18);

void BM_DirectDbspExecution(benchmark::State& state) {
    const auto v = static_cast<std::uint64_t>(state.range(0));
    SplitMix64 rng(1);
    std::vector<model::Word> keys(v);
    for (auto& k : keys) k = rng.next();
    model::DbspMachine machine(model::AccessFunction::polynomial(0.5));
    for (auto _ : state) {
        algo::BitonicSortProgram prog(keys);
        benchmark::DoNotOptimize(machine.run(prog).time);
    }
}
BENCHMARK(BM_DirectDbspExecution)->Arg(1 << 8)->Arg(1 << 10);

void BM_HmmSimulator(benchmark::State& state) {
    const auto v = static_cast<std::uint64_t>(state.range(0));
    const auto f = model::AccessFunction::polynomial(0.5);
    for (auto _ : state) {
        algo::RandomRoutingProgram prog(v, {0, 3, 5, 2, 7, 1}, 9);
        auto smoothed = core::smooth(prog, core::hmm_label_set(f, prog.context_words(), v));
        benchmark::DoNotOptimize(core::HmmSimulator(f).simulate(*smoothed).hmm_cost);
    }
}
BENCHMARK(BM_HmmSimulator)->Arg(1 << 8)->Arg(1 << 10);

void BM_BtSimulator(benchmark::State& state) {
    const auto v = static_cast<std::uint64_t>(state.range(0));
    const auto f = model::AccessFunction::polynomial(0.5);
    for (auto _ : state) {
        algo::RandomRoutingProgram prog(v, {0, 3, 5, 2, 7, 1}, 9);
        auto smoothed = core::smooth(prog, core::bt_label_set(f, prog.context_words(), v));
        benchmark::DoNotOptimize(core::BtSimulator(f).simulate(*smoothed).bt_cost);
    }
}
BENCHMARK(BM_BtSimulator)->Arg(1 << 8)->Arg(1 << 10);

// --- the --json mode --------------------------------------------------------

/// The E3 workload: a random cluster-respecting routing program simulated on
/// the x^0.5-HMM via the Figure 1 schedule (the hottest loop in the suite).
std::vector<unsigned> e3_labels(std::uint64_t v) {
    SplitMix64 rng(7);
    std::vector<unsigned> labels;
    const unsigned log_v = ilog2(v);
    for (unsigned l = 0; l <= log_v; ++l) {
        labels.push_back(log_v - l);
        if (l % 2 == 0) labels.push_back(static_cast<unsigned>(rng.next_below(log_v + 1)));
    }
    return labels;
}

struct JsonMeasurement {
    double seconds = 0.0;
    std::uint64_t words = 0;
    double hmm_cost = 0.0;
    std::uint64_t table_builds = 0;
    std::uint64_t builds_avoided = 0;
    bool trace_exact = true;   ///< sink total == hmm_cost on every traced rep
    bool counts_exact = true;  ///< LocalitySink references == words_touched per rep
    double locality_score = 0.0;  ///< profile score of a locality leg (else 0)

    double words_per_sec() const {
        return seconds > 0.0 ? static_cast<double>(words) / seconds : 0.0;
    }
};

/// Which sink (if any) rides along on the timed leg.
enum class TraceLeg { kNone, kAggregate, kLocality, kLocalitySampled };

/// SHARDS rate of the sampled locality leg (the production default).
constexpr double kSampleRate = 0.01;

JsonMeasurement run_e3_workload(std::uint64_t v, int reps, bool fast_paths,
                                TraceLeg leg = TraceLeg::kNone,
                                std::size_t threads = 1) {
    // fill_messages = 8 makes the program full (h = 9): most context words
    // are message records, the regime the bulk delivery path targets.
    constexpr std::size_t kFill = 8;
    const auto f = model::AccessFunction::polynomial(0.5);
    model::ScopedBulkAccess bulk(fast_paths);
    model::ScopedCostTableCache cache(fast_paths);
    model::CostTableCache::global().clear();
    const auto stats0 = model::CostTableCache::global().stats();

    JsonMeasurement m;
    trace::AggregateSink agg;
    locality::LocalityOptions loc_opts;
    if (leg == TraceLeg::kLocalitySampled) {
        loc_opts.mode = locality::LocalityOptions::Mode::kSampled;
        loc_opts.sample_rate = kSampleRate;
    }
    locality::LocalitySink loc(loc_opts);
    const bool locality_leg =
        leg == TraceLeg::kLocality || leg == TraceLeg::kLocalitySampled;
    core::HmmSimulator::Options options;
    options.threads = threads;
    if (leg == TraceLeg::kAggregate) options.trace = &agg;
    if (locality_leg) options.trace = &loc;
    std::uint64_t loc_seen = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
        algo::RandomRoutingProgram prog(v, e3_labels(v), 101, 0, kFill);
        auto smoothed = core::smooth(prog, core::hmm_label_set(f, prog.context_words(), v));
        const auto res = core::HmmSimulator(f, options).simulate(*smoothed);
        m.words += res.words_touched;
        m.hmm_cost = res.hmm_cost;
        if (options.trace != nullptr && options.trace->total() != res.hmm_cost) {
            m.trace_exact = false;
        }
        if (locality_leg) {
            // The engine accumulates across reps; each rep must add exactly
            // the machine's charged word touches to the reference count
            // (sampled mode still counts every reference — only measurement
            // is sampled).
            const std::uint64_t now = loc.recorded_accesses();
            if (now - loc_seen != res.words_touched) m.counts_exact = false;
            loc_seen = now;
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    m.seconds = std::chrono::duration<double>(t1 - t0).count();
    if (locality_leg) m.locality_score = loc.profile().locality_score();
    const auto stats1 = model::CostTableCache::global().stats();
    m.table_builds = stats1.builds - stats0.builds;
    m.builds_avoided = stats1.builds_avoided() - stats0.builds_avoided();
    return m;
}

report::Json measurement_json(const JsonMeasurement& m) {
    report::Json j = report::Json::object();
    j.set("wall_seconds", m.seconds);
    j.set("words_simulated", m.words);
    j.set("words_per_sec", m.words_per_sec());
    j.set("hmm_cost", m.hmm_cost);
    j.set("cost_table_builds", m.table_builds);
    j.set("cost_table_builds_avoided", m.builds_avoided);
    if (m.locality_score != 0.0) j.set("locality_score", m.locality_score);
    return j;
}

/// Median of a (small, odd-ordered by sort) vector of per-round estimates.
double median_of(std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

int run_json_mode(const std::string& path) {
    constexpr std::uint64_t kProcessors = 1 << 11;
    constexpr int kReps = 16;
    constexpr int kRounds = 5;
    // Enabled-path legs: the exact engine runs the workload tens of times
    // slower than untraced (treap + stamp-slot work on every reference), the
    // sampled engine a few times slower, so their rep counts are scaled down
    // to bound wall-clock share; overheads compare *throughput*, so unequal
    // rep counts stay comparable.
    constexpr int kEnabledRounds = 3;
    constexpr int kExactReps = 2;
    constexpr int kSampledReps = 8;
    constexpr int kTracedRounds = 2;

    // Warm-up outside the timed region (page faults, first-touch, clocks).
    (void)run_e3_workload(kProcessors, 1, true);

    // Alternate the untraced legs, flipping their order every round, and keep
    // each leg's best round: robust against one-sided frequency/cache
    // transients that a single A-then-B pass folds entirely into whichever
    // leg ran first. `loff` is a second, independent run of the null-sink
    // leg: the LocalitySink disabled path *is* the null-sink path, so its
    // measured overhead is this A/A delta — pure harness noise by
    // construction, which is exactly the claim being audited.
    JsonMeasurement fast, loff, slow, traced;
    bool trace_exact = true;
    bool loc_counts_exact = true;
    std::vector<double> aa_deltas;  // per-round paired A/A deltas, percent
    for (int round = 0; round < kRounds; ++round) {
        JsonMeasurement f, l;
        if (round % 2 == 0) {
            f = run_e3_workload(kProcessors, kReps, true);
            l = run_e3_workload(kProcessors, kReps, true);
        } else {
            l = run_e3_workload(kProcessors, kReps, true);
            f = run_e3_workload(kProcessors, kReps, true);
        }
        aa_deltas.push_back(100.0 * (l.seconds - f.seconds) / f.seconds);
        const JsonMeasurement s = run_e3_workload(kProcessors, kReps, false);
        if (round == 0 || f.seconds < fast.seconds) fast = f;
        if (round == 0 || l.seconds < loff.seconds) loff = l;
        if (round == 0 || s.seconds < slow.seconds) slow = s;
    }
    // The paired-median estimator: within each round the two legs run back to
    // back (order flipped every round), so slow monotonic drift — thermal
    // ramps, allocator growth — contributes deltas of alternating sign and
    // the median sits at the true A/A gap, which for identical code is noise
    // around zero. A best-of-N difference, by contrast, keeps any systematic
    // position bias.
    const double aa_median_pct = median_of(aa_deltas);
    // The sink-attached legs run after the untraced rounds finish: the
    // AggregateSink's per-level buckets and the LocalitySink's hash map and
    // treap churn the cache, and interleaving them would bleed that pollution
    // into the untraced (disabled-path) timings.
    for (int round = 0; round < kTracedRounds; ++round) {
        const JsonMeasurement t = run_e3_workload(kProcessors, kReps, true,
                                                  TraceLeg::kAggregate);
        trace_exact = trace_exact && t.trace_exact;
        if (round == 0 || t.seconds < traced.seconds) traced = t;
    }
    traced.trace_exact = trace_exact;
    // Enabled-path overhead, measured with the same paired-rounds/median
    // scheme as the A/A audit above: each round runs a fresh untraced
    // reference leg and both enabled legs back to back (order flipped every
    // round) and contributes one per-round throughput ratio; the medians are
    // the reported overheads. A single-shot ratio against the best-of
    // untraced leg would fold any transient the enabled legs happened to
    // absorb — and the untraced best never did — straight into the overhead.
    JsonMeasurement locon, locsamp;
    std::vector<double> exact_pcts, sampled_pcts;
    for (int round = 0; round < kEnabledRounds; ++round) {
        JsonMeasurement u, ex, sa;
        if (round % 2 == 0) {
            u = run_e3_workload(kProcessors, kReps, true);
            ex = run_e3_workload(kProcessors, kExactReps, true, TraceLeg::kLocality);
            sa = run_e3_workload(kProcessors, kSampledReps, true,
                                 TraceLeg::kLocalitySampled);
        } else {
            sa = run_e3_workload(kProcessors, kSampledReps, true,
                                 TraceLeg::kLocalitySampled);
            ex = run_e3_workload(kProcessors, kExactReps, true, TraceLeg::kLocality);
            u = run_e3_workload(kProcessors, kReps, true);
        }
        exact_pcts.push_back(100.0 * (u.words_per_sec() / ex.words_per_sec() - 1.0));
        sampled_pcts.push_back(100.0 * (u.words_per_sec() / sa.words_per_sec() - 1.0));
        trace_exact = trace_exact && ex.trace_exact && sa.trace_exact;
        loc_counts_exact = loc_counts_exact && ex.counts_exact && sa.counts_exact;
        if (round == 0 || ex.words_per_sec() > locon.words_per_sec()) locon = ex;
        if (round == 0 || sa.words_per_sec() > locsamp.words_per_sec()) locsamp = sa;
    }
    locon.trace_exact = trace_exact;
    locon.counts_exact = loc_counts_exact;
    locsamp.trace_exact = trace_exact;
    locsamp.counts_exact = loc_counts_exact;
    // Sampled-mode accuracy: one rep of the identical workload through each
    // engine (fresh sinks — reps accumulate into one profile, so the two
    // legs must see streams of equal length for their scores to be
    // comparable). The absolute score error is the SHARDS estimation error
    // at the production rate, gated by the conformance baseline.
    const JsonMeasurement acc_exact =
        run_e3_workload(kProcessors, 1, true, TraceLeg::kLocality);
    const JsonMeasurement acc_sampled =
        run_e3_workload(kProcessors, 1, true, TraceLeg::kLocalitySampled);
    const double sampled_score_abs_err =
        std::abs(acc_sampled.locality_score - acc_exact.locality_score);
    // Parallel scaling leg: the same workload with the simulator's superstep
    // loops sharded over 4 worker threads. The charged cost must stay
    // bit-identical to the serial best-of run (the sharded accumulators merge
    // in cluster order, so `threads` only changes wall time, never costs).
    constexpr int kScalingRounds = 3;
    constexpr std::size_t kScalingThreads = 4;
    JsonMeasurement par;
    for (int round = 0; round < kScalingRounds; ++round) {
        const JsonMeasurement p =
            run_e3_workload(kProcessors, kReps, true, TraceLeg::kNone, kScalingThreads);
        if (round == 0 || p.seconds < par.seconds) par = p;
    }
    const double parallel_speedup = par.seconds > 0.0 ? fast.seconds / par.seconds : 0.0;
    const bool costs_parallel = par.hmm_cost == fast.hmm_cost;
    // Hardware-counter leg: the same workload once more with a CounterGroup
    // armed around the rep loop. The counters observe the process from the
    // outside (perf_event_open fds), so the charged cost must stay
    // bit-identical to the untraced best-of — that invariant is recorded and
    // gated; the snapshot itself is informational (and auto-waived wherever
    // the PMU is unavailable, e.g. containers without CAP_PERFMON).
    perf::CounterGroup hw_counters;
    hw_counters.start();
    const JsonMeasurement ctr = run_e3_workload(kProcessors, kReps, true);
    hw_counters.stop();
    const perf::CounterSnapshot hw_snapshot = hw_counters.read();
    const bool costs_counters = ctr.hmm_cost == fast.hmm_cost;
    const double speedup = fast.seconds > 0.0 ? slow.seconds / fast.seconds : 0.0;
    // The untraced leg runs with the null sink, i.e. it *is* the disabled
    // path whose overhead must stay within noise; the traced legs measure
    // the cost of attaching each sink. The AggregateSink's overhead compares
    // against the untraced best-of; the locality overheads are the
    // paired-round medians computed above.
    const double tracing_overhead_pct =
        traced.words_per_sec() > 0.0
            ? 100.0 * (fast.words_per_sec() / traced.words_per_sec() - 1.0)
            : 0.0;
    const double locality_overhead_pct = aa_median_pct;
    const double locality_enabled_overhead_pct = median_of(exact_pcts);
    const double locality_sampled_overhead_pct = median_of(sampled_pcts);

    report::Json doc = report::Json::object();
    doc.set("workload", "E3 random routing, v=" + std::to_string(kProcessors) +
                            ", x^0.5-HMM, " + std::to_string(kReps) + " reps");
    doc.set("provenance", report::Provenance::collect().to_json());
    report::Json measurements = report::Json::object();
    measurements.set("bulk_with_cache", measurement_json(fast));
    measurements.set("bulk_with_cache_locality_off", measurement_json(loff));
    measurements.set("bulk_with_cache_traced", measurement_json(traced));
    measurements.set("bulk_with_cache_locality", measurement_json(locon));
    measurements.set("bulk_with_cache_locality_sampled", measurement_json(locsamp));
    measurements.set("per_word_no_cache", measurement_json(slow));
    measurements.set("bulk_with_cache_threads4", measurement_json(par));
    measurements.set("bulk_with_cache_counters", measurement_json(ctr));
    doc.set("measurements", std::move(measurements));
    doc.set("speedup_bulk_vs_per_word", speedup);
    doc.set("costs_bit_identical", fast.hmm_cost == slow.hmm_cost);
    doc.set("parallel_speedup", parallel_speedup);
    doc.set("costs_bit_identical_parallel", costs_parallel);
    doc.set("costs_bit_identical_counters", costs_counters);
    doc.set("counters", hw_snapshot.to_json());
    doc.set("tracing_overhead_pct", tracing_overhead_pct);
    doc.set("locality_overhead_pct", locality_overhead_pct);
    doc.set("locality_enabled_overhead_pct", locality_enabled_overhead_pct);
    doc.set("locality_sampled_overhead_pct", locality_sampled_overhead_pct);
    doc.set("locality_sampled_rate", kSampleRate);
    doc.set("locality_sampled_score_abs_err", sampled_score_abs_err);
    doc.set("trace_total_equals_cost", trace_exact);
    doc.set("locality_counts_exact", loc_counts_exact);
    doc.set("metrics", report::metrics_to_json());
    std::string error;
    if (!doc.save_file(path, &error)) {
        std::fprintf(stderr, "bench_micro: cannot write %s: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }

    std::printf("E3 workload (v=%llu, %d reps):\n",
                static_cast<unsigned long long>(kProcessors), kReps);
    std::printf("  bulk+cache:    %.3fs  (%.0f words/s, %llu table builds, %llu avoided)\n",
                fast.seconds, fast.words_per_sec(),
                static_cast<unsigned long long>(fast.table_builds),
                static_cast<unsigned long long>(fast.builds_avoided));
    std::printf("  per-word:      %.3fs  (%.0f words/s, %llu table builds)\n",
                slow.seconds, slow.words_per_sec(),
                static_cast<unsigned long long>(slow.table_builds));
    std::printf("  traced:        %.3fs  (AggregateSink attached, overhead %+.1f%%, "
                "mirror exact: %s)\n",
                traced.seconds, tracing_overhead_pct, trace_exact ? "yes" : "NO");
    std::printf("  locality off:  %.3fs  (A/A re-run of the null-sink leg, "
                "paired-median delta %+.1f%%)\n",
                loff.seconds, locality_overhead_pct);
    std::printf("  locality on:   %.3fs  (exact engine, %d reps, paired-median overhead "
                "%+.1f%%, counts exact: %s)\n",
                locon.seconds, kExactReps, locality_enabled_overhead_pct,
                loc_counts_exact ? "yes" : "NO");
    std::printf("  locality smp:  %.3fs  (SHARDS @%.2f, %d reps, paired-median overhead "
                "%+.1f%%, score abs err %.4f)\n",
                locsamp.seconds, kSampleRate, kSampledReps,
                locality_sampled_overhead_pct, sampled_score_abs_err);
    std::printf("  speedup:       %.2fx   costs bit-identical: %s\n", speedup,
                fast.hmm_cost == slow.hmm_cost ? "yes" : "NO");
    std::printf("  threads=4:     %.3fs  (simulator sharded on %zu workers, speedup "
                "%.2fx, costs bit-identical: %s)\n",
                par.seconds, kScalingThreads, parallel_speedup,
                costs_parallel ? "yes" : "NO");
    std::printf("  wrote %s\n", path.c_str());
    const bool ok = fast.hmm_cost == slow.hmm_cost && trace_exact && loc_counts_exact &&
                    traced.hmm_cost == fast.hmm_cost && locon.hmm_cost == fast.hmm_cost &&
                    locsamp.hmm_cost == fast.hmm_cost && costs_parallel;
    return ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            const std::string path =
                (i + 1 < argc && argv[i + 1][0] != '-') ? argv[i + 1] : "BENCH_micro.json";
            return run_json_mode(path);
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
