/// Wall-clock microbenchmarks (google-benchmark) of the simulator
/// implementations themselves — not paper results, but useful for keeping
/// the cost-model machinery fast enough to run the E1-E12 experiments.

#include <benchmark/benchmark.h>

#include "algos/bitonic_sort.hpp"
#include "algos/permutation.hpp"
#include "core/bt_simulator.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "hmm/machine.hpp"
#include "hmm/primitives.hpp"
#include "model/dbsp_machine.hpp"
#include "util/rng.hpp"

namespace {

using namespace dbsp;

void BM_HmmScan(benchmark::State& state) {
    const auto n = static_cast<std::uint64_t>(state.range(0));
    hmm::Machine m(model::AccessFunction::polynomial(0.5), n);
    for (auto _ : state) {
        m.reset_cost();
        benchmark::DoNotOptimize(hmm::touch_all(m, n));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HmmScan)->Arg(1 << 14)->Arg(1 << 18);

void BM_DirectDbspExecution(benchmark::State& state) {
    const auto v = static_cast<std::uint64_t>(state.range(0));
    SplitMix64 rng(1);
    std::vector<model::Word> keys(v);
    for (auto& k : keys) k = rng.next();
    model::DbspMachine machine(model::AccessFunction::polynomial(0.5));
    for (auto _ : state) {
        algo::BitonicSortProgram prog(keys);
        benchmark::DoNotOptimize(machine.run(prog).time);
    }
}
BENCHMARK(BM_DirectDbspExecution)->Arg(1 << 8)->Arg(1 << 10);

void BM_HmmSimulator(benchmark::State& state) {
    const auto v = static_cast<std::uint64_t>(state.range(0));
    const auto f = model::AccessFunction::polynomial(0.5);
    for (auto _ : state) {
        algo::RandomRoutingProgram prog(v, {0, 3, 5, 2, 7, 1}, 9);
        auto smoothed = core::smooth(prog, core::hmm_label_set(f, prog.context_words(), v));
        benchmark::DoNotOptimize(core::HmmSimulator(f).simulate(*smoothed).hmm_cost);
    }
}
BENCHMARK(BM_HmmSimulator)->Arg(1 << 8)->Arg(1 << 10);

void BM_BtSimulator(benchmark::State& state) {
    const auto v = static_cast<std::uint64_t>(state.range(0));
    const auto f = model::AccessFunction::polynomial(0.5);
    for (auto _ : state) {
        algo::RandomRoutingProgram prog(v, {0, 3, 5, 2, 7, 1}, 9);
        auto smoothed = core::smooth(prog, core::bt_label_set(f, prog.context_words(), v));
        benchmark::DoNotOptimize(core::BtSimulator(f).simulate(*smoothed).bt_cost);
    }
}
BENCHMARK(BM_BtSimulator)->Arg(1 << 8)->Arg(1 << 10);

}  // namespace

BENCHMARK_MAIN();
