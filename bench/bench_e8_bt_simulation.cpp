/// Experiment E8 — Theorem 12: a fine-grained D-BSP(v, mu, g) program
/// simulates on f(x)-BT in time
///     O( v (tau + mu sum_i lambda_i log(mu v / 2^i)) ),
/// *independent of the access function f* — block transfer flattens the
/// hierarchy's access costs. We measure (a) the cost/bound band across v and
/// (b) the near-coincidence of the x^0.35-, x^0.5- and log x-BT costs on the
/// same program.

#include "algos/bitonic_sort.hpp"
#include "algos/permutation.hpp"
#include <cmath>

#include "bench/common.hpp"
#include "core/bounds.hpp"
#include "core/bt_simulator.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace {

std::vector<unsigned> workload_labels(std::uint64_t v) {
    std::vector<unsigned> labels;
    const unsigned log_v = dbsp::ilog2(v);
    for (unsigned l = 0; l <= log_v; ++l) labels.push_back(log_v - l);
    for (unsigned l = 0; l < log_v; l += 2) labels.push_back(l);
    return labels;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dbsp;
    bench::Experiment ex("e8", "E8  D-BSP -> BT simulation (Theorem 12)",
                         "simulation on f(x)-BT costs O(v(tau + mu sum lambda_i "
                         "log(mu v / 2^i))), independent of f");
    if (!ex.parse_args(argc, argv)) return 2;

    for (const auto& f : bench::case_study_functions()) {
        bench::section("routing workload on " + f.name() + "-BT: cost vs Thm 12 bound");
        Table table({"v", "BT sim", "Thm12 bound", "ratio"});
        std::vector<double> ratios;
        for (std::uint64_t v = 1 << 5; v <= (1 << 10); v <<= 1) {
            const auto labels = workload_labels(v);
            algo::RandomRoutingProgram direct_prog(v, labels, 31);
            const auto run = model::DbspMachine(model::AccessFunction::logarithmic())
                                 .run(direct_prog);
            algo::RandomRoutingProgram prog(v, labels, 31);
            auto smoothed =
                core::smooth(prog, core::bt_label_set(f, prog.context_words(), v));
            const auto res = core::BtSimulator(f).simulate(*smoothed);
            const double bound = core::theorem12_bound(run, v, prog.context_words());
            table.add_row_values(
                {static_cast<double>(v), res.bt_cost, bound, res.bt_cost / bound});
            ratios.push_back(res.bt_cost / bound);
        }
        table.print();
        ex.check_band("BT sim / Thm12 bound [" + f.name() + "]", ratios, 1.5);
    }

    bench::section("f-independence: same bitonic program under all three f");
    {
        Table table({"v", "x^0.35-BT", "x^0.50-BT", "log x-BT", "max/min"});
        std::vector<double> spreads;
        for (std::uint64_t v = 1 << 5; v <= (1 << 9); v <<= 2) {
            SplitMix64 rng(v);
            std::vector<model::Word> keys(v);
            for (auto& k : keys) k = rng.next();
            std::vector<double> costs;
            for (const auto& f : bench::case_study_functions()) {
                algo::BitonicSortProgram prog(keys);
                auto smoothed =
                    core::smooth(prog, core::bt_label_set(f, prog.context_words(), v));
                costs.push_back(core::BtSimulator(f).simulate(*smoothed).bt_cost);
            }
            table.add_row_values({static_cast<double>(v), costs[0], costs[1], costs[2],
                                  spread(costs)});
            spreads.push_back(spread(costs));
        }
        table.print();
        std::printf("(contrast with the HMM, where the same program's cost varies with "
                    "f by polynomial factors)\n");
        // The f-independence claim: the three BT costs stay within a small
        // constant of one another at the largest machine size (and the spread
        // must not *grow* with v, unlike on the HMM).
        ex.check_max("f-independence max/min BT cost at largest v", spreads.back(), 3.0);
        ex.check_max("f-independence spread growth across sweep",
                     spreads.back() / spreads.front(), 1.05);
    }

    // Opt-in charge trace (DBSP_TRACE=1 or =path.json): re-run the largest
    // routing point on the x^0.5-BT with a sink attached.
    bench::EnvTrace env_trace;
    if (env_trace.enabled()) {
        const std::uint64_t v = 1 << 10;
        const auto f = model::AccessFunction::polynomial(0.5);
        const auto labels = workload_labels(v);
        algo::RandomRoutingProgram prog(v, labels, 31);
        auto smoothed = core::smooth(prog, core::bt_label_set(f, prog.context_words(), v));
        core::BtSimulator::Options options;
        options.trace = env_trace.sink();
        const auto res = core::BtSimulator(f, options).simulate(*smoothed);
        env_trace.report("BT simulation, " + f.name() + ", v=" + std::to_string(v),
                         res.bt_cost);
    }
    return ex.finish();
}
