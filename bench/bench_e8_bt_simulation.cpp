/// Experiment E8 — Theorem 12: a fine-grained D-BSP(v, mu, g) program
/// simulates on f(x)-BT in time
///     O( v (tau + mu sum_i lambda_i log(mu v / 2^i)) ),
/// *independent of the access function f* — block transfer flattens the
/// hierarchy's access costs. We measure (a) the cost/bound band across v and
/// (b) the near-coincidence of the x^0.35-, x^0.5- and log x-BT costs on the
/// same program.
///
/// All sweep points — the routing/bound sweep for every f AND the
/// f-independence bitonic grid — are evaluated through ONE parallel_sweep, so
/// the harness keeps every worker busy across heterogeneous task sizes. Each
/// point is an independent simulation; the tables are printed afterwards from
/// the ordered result vector, and every model cost is bit-identical to a
/// serial run (the executors guarantee this at any thread count).

#include "algos/bitonic_sort.hpp"
#include "algos/permutation.hpp"
#include <cmath>

#include "bench/common.hpp"
#include "core/bounds.hpp"
#include "core/bt_simulator.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace {

std::vector<unsigned> workload_labels(std::uint64_t v) {
    std::vector<unsigned> labels;
    const unsigned log_v = dbsp::ilog2(v);
    for (unsigned l = 0; l <= log_v; ++l) labels.push_back(log_v - l);
    for (unsigned l = 0; l < log_v; l += 2) labels.push_back(l);
    return labels;
}

/// One unit of work for the combined sweep: either a routing point (BT cost
/// vs the Theorem 12 bound under functions[f_index]) or a bitonic point (BT
/// cost only, for the f-independence spread).
struct Point {
    enum Kind { kRouting, kBitonic } kind;
    std::size_t f_index;
    std::uint64_t v;
};

struct Row {
    double bt_cost = 0.0;
    double bound = 0.0;  ///< Theorem 12 bound (routing points only)
};

}  // namespace

int main(int argc, char** argv) {
    using namespace dbsp;
    bench::Experiment ex("e8", "E8  D-BSP -> BT simulation (Theorem 12)",
                         "simulation on f(x)-BT costs O(v(tau + mu sum lambda_i "
                         "log(mu v / 2^i))), independent of f");
    if (!ex.parse_args(argc, argv)) return 2;

    const auto functions = bench::case_study_functions();

    std::vector<Point> points;
    for (std::size_t fi = 0; fi < functions.size(); ++fi) {
        for (std::uint64_t v = 1 << 5; v <= (1 << 10); v <<= 1) {
            points.push_back({Point::kRouting, fi, v});
        }
    }
    for (std::uint64_t v = 1 << 5; v <= (1 << 9); v <<= 2) {
        for (std::size_t fi = 0; fi < functions.size(); ++fi) {
            points.push_back({Point::kBitonic, fi, v});
        }
    }

    const auto rows = ex.timed_leg("e8 combined sweep", [&] {
        return bench::parallel_sweep(points, [&](const Point& pt) {
            const auto& f = functions[pt.f_index];
            Row row;
            if (pt.kind == Point::kRouting) {
                const auto labels = workload_labels(pt.v);
                algo::RandomRoutingProgram direct_prog(pt.v, labels, 31);
                const auto run = model::DbspMachine(model::AccessFunction::logarithmic())
                                     .run(direct_prog);
                algo::RandomRoutingProgram prog(pt.v, labels, 31);
                auto smoothed =
                    core::smooth(prog, core::bt_label_set(f, prog.context_words(), pt.v));
                const auto res = core::BtSimulator(f).simulate(*smoothed);
                row.bt_cost = res.bt_cost;
                row.bound = core::theorem12_bound(run, pt.v, prog.context_words());
            } else {
                SplitMix64 rng(pt.v);
                std::vector<model::Word> keys(pt.v);
                for (auto& k : keys) k = rng.next();
                algo::BitonicSortProgram prog(keys);
                auto smoothed =
                    core::smooth(prog, core::bt_label_set(f, prog.context_words(), pt.v));
                row.bt_cost = core::BtSimulator(f).simulate(*smoothed).bt_cost;
            }
            return row;
        });
    });

    // Print / check the routing section per f, reading rows in point order.
    std::size_t next = 0;
    for (std::size_t fi = 0; fi < functions.size(); ++fi) {
        const auto& f = functions[fi];
        bench::section("routing workload on " + f.name() + "-BT: cost vs Thm 12 bound");
        Table table({"v", "BT sim", "Thm12 bound", "ratio"});
        std::vector<double> ratios;
        for (std::uint64_t v = 1 << 5; v <= (1 << 10); v <<= 1) {
            const Row& row = rows[next++];
            table.add_row_values(
                {static_cast<double>(v), row.bt_cost, row.bound, row.bt_cost / row.bound});
            ratios.push_back(row.bt_cost / row.bound);
        }
        table.print();
        ex.check_band("BT sim / Thm12 bound [" + f.name() + "]", ratios, 1.5);
    }

    bench::section("f-independence: same bitonic program under all three f");
    {
        Table table({"v", "x^0.35-BT", "x^0.50-BT", "log x-BT", "max/min"});
        std::vector<double> spreads;
        for (std::uint64_t v = 1 << 5; v <= (1 << 9); v <<= 2) {
            std::vector<double> costs;
            for (std::size_t fi = 0; fi < functions.size(); ++fi) {
                costs.push_back(rows[next++].bt_cost);
            }
            table.add_row_values({static_cast<double>(v), costs[0], costs[1], costs[2],
                                  spread(costs)});
            spreads.push_back(spread(costs));
        }
        table.print();
        std::printf("(contrast with the HMM, where the same program's cost varies with "
                    "f by polynomial factors)\n");
        // The f-independence claim: the three BT costs stay within a small
        // constant of one another at the largest machine size (and the spread
        // must not *grow* with v, unlike on the HMM).
        ex.check_max("f-independence max/min BT cost at largest v", spreads.back(), 3.0);
        ex.check_max("f-independence spread growth across sweep",
                     spreads.back() / spreads.front(), 1.05);
    }

    // Opt-in charge trace (DBSP_TRACE=1 or =path.json): re-run the largest
    // routing point on the x^0.5-BT with a sink attached. The sink is not
    // thread-safe, so this stays a serial leg.
    bench::EnvTrace env_trace;
    if (env_trace.enabled()) {
        ex.timed_leg("e8 traced re-run", [&] {
            const std::uint64_t v = 1 << 10;
            const auto f = model::AccessFunction::polynomial(0.5);
            const auto labels = workload_labels(v);
            algo::RandomRoutingProgram prog(v, labels, 31);
            auto smoothed =
                core::smooth(prog, core::bt_label_set(f, prog.context_words(), v));
            core::BtSimulator::Options options;
            options.trace = env_trace.sink();
            const auto res = core::BtSimulator(f, options).simulate(*smoothed);
            env_trace.report("BT simulation, " + f.name() + ", v=" + std::to_string(v),
                             res.bt_cost);
        });
    }
    return ex.finish();
}
