/// Experiment E10 — Section 5.3, DFT on BT and the bridging-model question.
/// Both D-BSP DFT algorithms cost O(n^alpha) on D-BSP(n, O(1), x^alpha) —
/// the x^alpha machine cannot rank them — but their BT simulations differ:
///   direct schedule    -> O(n log^2 n),
///   recursive schedule -> O(n log n log log n).
/// D-BSP(n, O(1), log x) *does* rank them (log^2 n vs log n log log n), which
/// is the paper's argument that g(x) = log x is the right bandwidth function
/// for deriving BT algorithms ("the choice g = f is not always the best").

#include <complex>

#include "algos/fft_direct.hpp"
#include "algos/fft_recursive.hpp"
#include <cmath>

#include "bench/common.hpp"
#include "core/bt_simulator.hpp"
#include "core/smoothing.hpp"
#include "model/dbsp_machine.hpp"
#include "util/rng.hpp"

namespace {

std::vector<std::complex<double>> signal(std::uint64_t n, std::uint64_t seed) {
    dbsp::SplitMix64 rng(seed);
    std::vector<std::complex<double>> x(n);
    for (auto& c : x) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};
    return x;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dbsp;
    bench::Experiment ex("e10", "E10 DFT on BT and the choice of g(x) (Section 5.3)",
                         "x^a D-BSP scores both DFT algorithms equally; log x D-BSP and the "
                         "BT simulation both prefer the recursive one");
    if (!ex.parse_args(argc, argv)) return 2;

    const auto f = model::AccessFunction::polynomial(0.35);

    bench::section("D-BSP times under both bandwidth functions (n = 256)");
    {
        Table table({"g(x)", "T direct", "T recursive", "direct/recursive"});
        for (const auto& g :
             {model::AccessFunction::polynomial(0.35), model::AccessFunction::logarithmic()}) {
            algo::FftDirectProgram direct(signal(256, 1));
            algo::FftRecursiveProgram recursive(signal(256, 1));
            const auto rd = model::DbspMachine(g).run(direct);
            const auto rr = model::DbspMachine(g).run(recursive);
            table.add_row({g.name(), Table::fmt(rd.time), Table::fmt(rr.time),
                           Table::fmt(rd.time / rr.time)});
        }
        table.print();
        std::printf("(x^a scores them nearly equal; log x separates them — only log x "
                    "predicts the BT ranking below)\n");
    }

    bench::section("BT simulation of the direct schedule: O(n log^2 n) shape");
    {
        Table table({"n", "BT sim", "n log^2 n", "ratio"});
        std::vector<double> ratios;
        for (std::uint64_t n = 1 << 6; n <= (1 << 12); n <<= 2) {
            algo::FftDirectProgram prog(signal(n, n));
            auto smoothed =
                core::smooth(prog, core::bt_label_set(f, prog.context_words(), n));
            const auto res = core::BtSimulator(f).simulate(*smoothed);
            const double dn = static_cast<double>(n);
            const double shape = dn * std::log2(dn) * std::log2(dn);
            table.add_row_values({dn, res.bt_cost, shape, res.bt_cost / shape});
            ratios.push_back(res.bt_cost / shape);
        }
        table.print();
        ex.check_band("direct-schedule BT sim / (n log^2 n)", ratios, 1.6);
    }

    bench::section("BT simulation of the recursive schedule: O(n log n loglog n) shape");
    {
        Table table({"n", "BT sim", "n logn loglogn", "ratio"});
        std::vector<double> ratios;
        for (std::uint64_t n : {16u, 256u, 65536u}) {
            algo::FftRecursiveProgram prog(signal(n, n));
            auto smoothed =
                core::smooth(prog, core::bt_label_set(f, prog.context_words(), n));
            const auto res = core::BtSimulator(f).simulate(*smoothed);
            const double dn = static_cast<double>(n);
            const double shape = dn * std::log2(dn) * std::log2(std::log2(dn) + 1.0);
            table.add_row_values({dn, res.bt_cost, shape, res.bt_cost / shape});
            ratios.push_back(res.bt_cost / shape);
        }
        table.print();
        ex.check_band("recursive-schedule BT sim / (n logn loglogn)", ratios, 1.7);
    }

    bench::section("head-to-head: measured constants and the crossover");
    {
        algo::FftDirectProgram direct(signal(256, 2));
        algo::FftRecursiveProgram recursive(signal(256, 2));
        auto sd = core::smooth(direct, core::bt_label_set(f, direct.context_words(), 256));
        auto sr =
            core::smooth(recursive, core::bt_label_set(f, recursive.context_words(), 256));
        const auto rd = core::BtSimulator(f).simulate(*sd);
        const auto rr = core::BtSimulator(f).simulate(*sr);
        const double cd = rd.bt_cost / (256.0 * 8.0 * 8.0);        // / n log^2 n
        const double cr = rr.bt_cost / (256.0 * 8.0 * 3.0);        // / n logn loglogn
        std::printf("n=256: direct %.3e (= %.0f n log^2 n),  recursive %.3e "
                    "(= %.0f n logn loglogn)\n", rd.bt_cost, cd, rr.bt_cost, cr);
        // cd * log n > cr * loglog n  <=>  log n / loglog n > cr / cd.
        std::printf("shape constants give a direct/recursive crossover where "
                    "log n / loglog n > %.1f — asymptotic, as in the paper, whose "
                    "separation is exactly the log n vs log n loglog n factor\n",
                    cr / cd);
        std::printf("(within laptop sizes the ranking is read off the confirmed "
                    "shape fits above, and off the log x D-BSP times, which order "
                    "the two algorithms the same way)\n");
    }
    return ex.finish();
}
