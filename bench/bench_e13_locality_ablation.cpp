/// Experiment E13 (ablation, beyond the paper's numbered results): it is
/// *submachine* locality, not parallelism per se, that translates into
/// locality of reference.
///
/// Two fine-grained parallel sorting networks solve the same problem:
///   * bitonic sort — structured parallelism, communication telescoping
///     through ever-smaller clusters (labels log v - k .. log v - 1 per merge
///     stage);
///   * odd-even transposition sort — flat parallelism: its odd rounds pair
///     neighbours across the cluster-tree root, forcing 0-supersteps, so the
///     program exposes no submachine locality at all.
/// Under the Theorem 5 simulation the first becomes a Theta(n^(1+alpha))
/// hierarchy-conscious algorithm; the second inherits a Theta(n) factor of
/// full-memory traffic per round, i.e. ~Theta(n^2 f'(n)) — the gap grows
/// without bound. This quantifies the introduction's thesis and the paper's
/// contrast with flat (PRAM/BSP) simulation approaches.

#include <cmath>

#include "algos/bitonic_sort.hpp"
#include "algos/odd_even_sort.hpp"
#include "bench/common.hpp"
#include "core/hmm_simulator.hpp"
#include "core/smoothing.hpp"
#include "locality/sink.hpp"
#include "model/dbsp_machine.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
    using namespace dbsp;
    bench::Experiment ex("e13", "E13 Locality ablation: structured vs flat parallelism",
                         "only submachine locality translates into locality of reference; "
                         "a flat network pays full-memory traffic every round");
    if (!ex.parse_args(argc, argv)) return 2;

    const auto f = model::AccessFunction::polynomial(0.5);
    bench::section("same sorting problem, two networks, x^0.5 everywhere");
    Table table({"n", "T bitonic", "T odd-even", "HMM sim bitonic", "HMM sim odd-even",
                 "sim gap", "loc score bitonic", "loc score odd-even"});
    std::vector<double> gaps, ns, score_bitonic, score_oddeven;
    for (std::uint64_t n = 1 << 5; n <= (1 << 10); n <<= 1) {
        SplitMix64 rng(n);
        std::vector<model::Word> keys(n);
        for (auto& k : keys) k = rng.next();

        algo::BitonicSortProgram bitonic(keys);
        algo::OddEvenTranspositionSortProgram oddeven(keys);
        model::DbspMachine machine(f);
        const auto rb = machine.run(bitonic);
        const auto ro = machine.run(oddeven);

        // Profile the simulations' address streams while simulating; the
        // sinks mirror the charged cost, so the cost columns are unchanged.
        locality::LocalitySink sink_b, sink_o;
        core::HmmSimulator::Options opt_b, opt_o;
        opt_b.trace = &sink_b;
        opt_o.trace = &sink_o;

        algo::BitonicSortProgram bitonic2(keys);
        auto sb = core::smooth(bitonic2, core::hmm_label_set(f, bitonic2.context_words(), n));
        const auto hb = core::HmmSimulator(f, opt_b).simulate(*sb);

        algo::OddEvenTranspositionSortProgram oddeven2(keys);
        auto so = core::smooth(oddeven2, core::hmm_label_set(f, oddeven2.context_words(), n));
        const auto ho = core::HmmSimulator(f, opt_o).simulate(*so);

        // Both must sort identically.
        for (std::uint64_t p = 0; p < n; ++p) {
            if (hb.data_of(p)[0] != ho.data_of(p)[0]) {
                std::printf("SORTERS DISAGREE\n");
                return 1;
            }
        }

        table.add_row_values({static_cast<double>(n), rb.time, ro.time, hb.hmm_cost,
                              ho.hmm_cost, ho.hmm_cost / hb.hmm_cost,
                              sink_b.profile().locality_score(),
                              sink_o.profile().locality_score()});
        gaps.push_back(ho.hmm_cost / hb.hmm_cost);
        ns.push_back(static_cast<double>(n));
        score_bitonic.push_back(sink_b.profile().locality_score());
        score_oddeven.push_back(sink_o.profile().locality_score());
    }
    table.print();
    ex.check_slope("flat/structured simulated-cost gap vs n", ns, gaps, 1.0, 0.35);
    ex.series("locality score vs n (bitonic, recursive sim)", ns, score_bitonic);
    ex.series("locality score vs n (odd-even, recursive sim)", ns, score_oddeven);
    // Drift tolerance 0.05: the gap is computed from exact locality scores,
    // whose last decimals are fold-order artifacts — engine changes that
    // regroup the identical event stream (batched folds, run compression)
    // legitimately move the third decimal without any behavioral change.
    ex.check_min("locality score gap odd-even minus bitonic at n=1024",
                 score_oddeven.back() - score_bitonic.back(), 0.25,
                 /*drift_tolerance=*/0.05);
    std::printf("(bitonic's simulation is Theta(n^1.5); odd-even transposition's is "
                "~Theta(n^2.5) (n rounds of full-memory traffic): the gap grows like n — structured submachine "
                "locality is what the simulation converts into temporal locality)\n"
                "(the per-point locality scores measure the same effect on the address "
                "stream itself:\n the flat network's mean log2 reuse distance stays pinned "
                "near full-memory depth)\n");
    return ex.finish();
}
